//! Per-operation counters backing the paper's cost model (§5).
//!
//! The paper reasons about training time through the unit costs
//! `T_ENC`, `T_DEC`, `T_HADD`, `T_SMUL`, `T_COMM`. The [`OpCounters`]
//! struct counts how many of each operation a run performs, so experiments
//! can report both wall times and operation counts (e.g. the number of
//! cipher *scalings* avoided by re-ordered accumulation).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe counters for every cryptography-related operation.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Encryptions performed (`T_ENC`).
    pub enc: AtomicU64,
    /// Decryptions performed (`T_DEC`). A packed decryption counts once.
    pub dec: AtomicU64,
    /// Homomorphic additions (`T_HADD`).
    pub hadd: AtomicU64,
    /// Scalar multiplications (`T_SMUL`), excluding scalings.
    pub smul: AtomicU64,
    /// Homomorphic negations: one modular inverse modulo `n²` each, the
    /// per-bin cost of ciphertext histogram subtraction.
    pub negs: AtomicU64,
    /// Cipher scalings: `SMul` by a power of the encoding base performed to
    /// align exponents before an addition. Re-ordered accumulation (§5.1)
    /// exists to minimize this counter.
    pub scalings: AtomicU64,
    /// Cipher packing operations (§5.2): each counts the construction of one
    /// packed cipher from `t` slot ciphers.
    pub packs: AtomicU64,
    /// Forward-path GH-pair encodings: each counts one (g, h) pair packed
    /// into a single plaintext before encryption.
    pub ghpack: AtomicU64,
    /// Montgomery modular multiplications performed by the fixed-limb
    /// backend. Zero under the `num-bigint` backend (whose internal
    /// multiplies are not observable), so this doubles as a backend
    /// fingerprint in run traces.
    pub modmul: AtomicU64,
    /// Limb-level REDC work: each Montgomery multiplication contributes
    /// its limb width `N`, making totals comparable across the `mod n²`
    /// and half-size CRT domains.
    pub redc: AtomicU64,
}

impl OpCounters {
    /// A fresh, shareable counter set.
    pub fn new_shared() -> Arc<OpCounters> {
        Arc::new(OpCounters::default())
    }

    /// Records `n` encryptions.
    pub fn add_enc(&self, n: u64) {
        self.enc.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` decryptions.
    pub fn add_dec(&self, n: u64) {
        self.dec.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` homomorphic additions.
    pub fn add_hadd(&self, n: u64) {
        self.hadd.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` scalar multiplications.
    pub fn add_smul(&self, n: u64) {
        self.smul.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` homomorphic negations.
    pub fn add_neg(&self, n: u64) {
        self.negs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` exponent-alignment scalings.
    pub fn add_scaling(&self, n: u64) {
        self.scalings.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` packing operations.
    pub fn add_pack(&self, n: u64) {
        self.packs.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` GH-pair encodings.
    pub fn add_ghpack(&self, n: u64) {
        self.ghpack.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` Montgomery modular multiplications.
    pub fn add_modmul(&self, n: u64) {
        self.modmul.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` limbs of REDC work.
    pub fn add_redc(&self, n: u64) {
        self.redc.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot.
    pub fn snapshot(&self) -> OpSnapshot {
        OpSnapshot {
            enc: self.enc.load(Ordering::Relaxed),
            dec: self.dec.load(Ordering::Relaxed),
            hadd: self.hadd.load(Ordering::Relaxed),
            smul: self.smul.load(Ordering::Relaxed),
            negs: self.negs.load(Ordering::Relaxed),
            scalings: self.scalings.load(Ordering::Relaxed),
            packs: self.packs.load(Ordering::Relaxed),
            ghpack: self.ghpack.load(Ordering::Relaxed),
            modmul: self.modmul.load(Ordering::Relaxed),
            redc: self.redc.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.enc.store(0, Ordering::Relaxed);
        self.dec.store(0, Ordering::Relaxed);
        self.hadd.store(0, Ordering::Relaxed);
        self.smul.store(0, Ordering::Relaxed);
        self.negs.store(0, Ordering::Relaxed);
        self.scalings.store(0, Ordering::Relaxed);
        self.packs.store(0, Ordering::Relaxed);
        self.ghpack.store(0, Ordering::Relaxed);
        self.modmul.store(0, Ordering::Relaxed);
        self.redc.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of [`OpCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpSnapshot {
    /// Encryptions.
    pub enc: u64,
    /// Decryptions.
    pub dec: u64,
    /// Homomorphic additions.
    pub hadd: u64,
    /// Scalar multiplications.
    pub smul: u64,
    /// Homomorphic negations.
    pub negs: u64,
    /// Exponent-alignment scalings.
    pub scalings: u64,
    /// Packing operations.
    pub packs: u64,
    /// GH-pair encodings (forward-path packing).
    pub ghpack: u64,
    /// Montgomery modular multiplications (fixed backend only).
    pub modmul: u64,
    /// Limb-level REDC work (fixed backend only).
    pub redc: u64,
}

impl OpSnapshot {
    /// Component-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &OpSnapshot) -> OpSnapshot {
        OpSnapshot {
            enc: self.enc.saturating_sub(earlier.enc),
            dec: self.dec.saturating_sub(earlier.dec),
            hadd: self.hadd.saturating_sub(earlier.hadd),
            smul: self.smul.saturating_sub(earlier.smul),
            negs: self.negs.saturating_sub(earlier.negs),
            scalings: self.scalings.saturating_sub(earlier.scalings),
            packs: self.packs.saturating_sub(earlier.packs),
            ghpack: self.ghpack.saturating_sub(earlier.ghpack),
            modmul: self.modmul.saturating_sub(earlier.modmul),
            redc: self.redc.saturating_sub(earlier.redc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = OpCounters::default();
        c.add_enc(3);
        c.add_dec(1);
        c.add_hadd(10);
        c.add_neg(6);
        c.add_scaling(4);
        let s = c.snapshot();
        assert_eq!(s.enc, 3);
        assert_eq!(s.dec, 1);
        assert_eq!(s.hadd, 10);
        assert_eq!(s.negs, 6);
        assert_eq!(s.scalings, 4);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let c = OpCounters::default();
        c.add_hadd(5);
        let before = c.snapshot();
        c.add_hadd(7);
        c.add_pack(2);
        let delta = c.snapshot().since(&before);
        assert_eq!(delta.hadd, 7);
        assert_eq!(delta.packs, 2);
        assert_eq!(delta.enc, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = OpCounters::default();
        c.add_smul(9);
        c.reset();
        assert_eq!(c.snapshot(), OpSnapshot::default());
    }
}
