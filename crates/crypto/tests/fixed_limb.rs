//! Property tests for the fixed-limb Montgomery backend against the
//! `num-bigint` reference implementation.
//!
//! Every supported dispatch width gets three families of checks —
//! widening multiply, Montgomery REDC multiplication, and windowed
//! modular exponentiation — over random operands *and* the carry-edge
//! vectors that break naive limb arithmetic: operands at `2^(64k) ± 1`
//! (all-ones / lowest-limb-only patterns) and modulus-adjacent values
//! (`m−1`, `m−2`, values just above `m` that force the entry reduction).

use num_bigint::{BigUint, RandBigInt};
use num_traits::One;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vf2_crypto::montgomery::CryptoBackend;
use vf2_crypto::{Fixed, KeyPair, MontExp, RandomnessPool};

/// Carry-edge operands below `2^bits`: `2^(64k) − 1` and `2^(64k) + 1`
/// for every limb boundary `k`, plus 0 and 1.
fn edge_operands(bits: u64) -> Vec<BigUint> {
    let mut ops = vec![BigUint::from(0u32), BigUint::one()];
    let mut k = 64u64;
    while k <= bits {
        let p = BigUint::one() << k;
        ops.push(&p - &BigUint::one());
        if k < bits {
            ops.push(&p + &BigUint::one());
        }
        k += 64;
    }
    ops
}

macro_rules! check_mul_wide {
    ($($n:literal),*) => {
        $(
        {
            let bits = 64 * $n as u64;
            let mut rng = StdRng::seed_from_u64(1000 + $n as u64);
            let mut ops = edge_operands(bits);
            for _ in 0..4 {
                ops.push(rng.gen_biguint(bits));
            }
            // Keep the pair count bounded at wide limb counts.
            let ops: Vec<BigUint> = ops.into_iter().take(12).collect();
            for a in &ops {
                for b in &ops {
                    let fa = Fixed::<$n>::from_biguint(a).expect("fits");
                    let fb = Fixed::<$n>::from_biguint(b).expect("fits");
                    let (lo, hi) = fa.mul_wide(&fb);
                    let got = lo.to_biguint() + (hi.to_biguint() << bits);
                    assert_eq!(got, a * b, "mul_wide at {} limbs: {a} * {b}", $n);
                }
            }
        }
        )*
    };
}

#[test]
fn mul_wide_matches_reference_at_every_width() {
    check_mul_wide!(1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64);
}

/// A random odd modulus with the top bit set, so it dispatches to the
/// intended width.
fn odd_modulus(rng: &mut StdRng, bits: u64) -> BigUint {
    let mut m = rng.gen_biguint(bits);
    m.set_bit(bits - 1, true);
    m.set_bit(0, true);
    m
}

/// Moduli chosen to land on each dispatch width, including just-past-a-
/// boundary bit counts that force the next width up.
fn dispatch_widths() -> Vec<(u64, usize)> {
    vec![
        (40, 1),
        (64, 1),
        (65, 2),
        (128, 2),
        (200, 4),
        (256, 4),
        (257, 6),
        (384, 6),
        (512, 8),
        (700, 12),
        (1024, 16),
        (1500, 24),
        (2048, 32),
        (3000, 48),
        (4096, 64),
    ]
}

#[test]
fn redc_multiplication_matches_reference_at_every_width() {
    let mut rng = StdRng::seed_from_u64(7001);
    for (bits, limbs) in dispatch_widths() {
        let m = odd_modulus(&mut rng, bits);
        let me = MontExp::new(&m).expect("odd modulus dispatches");
        assert_eq!(me.limbs(), limbs, "{bits}-bit modulus must use {limbs} limbs");
        let mut ops = edge_operands(bits);
        // Modulus-adjacent operands: m−1 and m−2 exercise the final
        // conditional subtraction; m+1 exercises the entry reduction.
        ops.push(&m - &BigUint::one());
        ops.push(&m - &BigUint::from(2u32));
        ops.push(&m + &BigUint::one());
        for _ in 0..3 {
            ops.push(rng.gen_biguint(bits));
        }
        let ops: Vec<BigUint> = ops.into_iter().take(10).collect();
        for a in &ops {
            for b in &ops {
                let (got, cost) = me.modmul(a, b);
                assert_eq!(got, (a * b) % &m, "modmul at {bits} bits: {a} * {b}");
                assert!(got < m, "result must be fully reduced");
                assert_eq!(cost.modmuls, 2, "plain modmul costs exactly two REDC passes");
            }
        }
    }
}

#[test]
fn modpow_matches_reference_at_every_width() {
    let mut rng = StdRng::seed_from_u64(7002);
    for (bits, _) in dispatch_widths() {
        let m = odd_modulus(&mut rng, bits);
        let me = MontExp::new(&m).expect("odd modulus dispatches");
        // Bounded exponents keep the naive reference affordable at 4096
        // bits; width coverage comes from the modulus, not the exponent.
        let exps = [
            BigUint::from(0u32),
            BigUint::one(),
            BigUint::from(2u32),
            BigUint::from(0xffu32),
            rng.gen_biguint(64),
            rng.gen_biguint(192),
        ];
        let bases = [
            BigUint::from(0u32),
            BigUint::one(),
            &m - &BigUint::one(),
            &m + &BigUint::from(3u32),
            rng.gen_biguint(bits + 13),
        ];
        for base in &bases {
            for exp in &exps {
                let (got, _) = me.modpow(base, exp);
                assert_eq!(
                    got,
                    base.modpow(exp, &m),
                    "modpow at {bits} bits: base {base} exp {exp}"
                );
            }
        }
    }
}

#[test]
fn full_width_paillier_exponents_match_reference() {
    // One full-width exponentiation per CRT domain of a real 512-bit key:
    // the exact shape of the production hot path.
    let kp = KeyPair::generate_seeded(512, 9).expect("keygen");
    let nn = kp.public.nn();
    let me = MontExp::new(nn).expect("n² is odd");
    let mut rng = StdRng::seed_from_u64(77);
    let r = rng.gen_biguint_range(&BigUint::one(), kp.public.n());
    let (got, cost) = me.modpow(&r, kp.public.n());
    assert_eq!(got, r.modpow(kp.public.n(), nn));
    // 4-bit windows: ~bits/4 table+window multiplies on top of the
    // squarings — far below one multiply per bit.
    let bits = kp.public.n().bits();
    assert!(cost.modmuls > bits, "must square once per exponent bit");
    assert!(cost.modmuls < 2 * bits, "windowing must beat square-and-multiply");
}

#[test]
fn paillier_pipeline_identical_across_backends() {
    let fixed = KeyPair::generate_seeded(512, 21).expect("keygen");
    let nb = fixed.with_backend(CryptoBackend::NumBigint);
    assert_eq!(nb.backend(), CryptoBackend::NumBigint);
    for seed in 0..4u64 {
        let v = BigUint::from(seed * 1_000_003 + 17);
        let cf = fixed.private.encrypt_raw(&v, &mut StdRng::seed_from_u64(seed));
        let cn = nb.private.encrypt_raw(&v, &mut StdRng::seed_from_u64(seed));
        assert_eq!(cf, cn, "ciphers must be bit-identical across backends");
        assert_eq!(fixed.private.decrypt_raw(&cf), v);
        assert_eq!(nb.private.decrypt_raw(&cf), v);
        let k = BigUint::from(seed + 3);
        assert_eq!(fixed.public.mul_raw(&cf, &k), nb.public.mul_raw(&cn, &k));
    }
    // Pool factors continue to match too (the pool generates through
    // whichever backend its key carries).
    let pf = RandomnessPool::new(&fixed.private, 3, false, 5);
    let pn = RandomnessPool::new(&nb.private, 3, false, 5);
    for _ in 0..3 {
        assert_eq!(pf.next_rn().unwrap(), pn.next_rn().unwrap());
    }
}
