//! A compact, deterministic binary codec.
//!
//! The federated protocol serializes every cross-party message through this
//! codec; the encoded length is exactly what the WAN simulation charges for,
//! so cipher sizes (2S bits each) show up honestly in transfer times.
//!
//! All integers are little-endian and fixed-width except lengths, which use
//! LEB128 varints. Big integers travel as length-prefixed little-endian
//! magnitude bytes (`num_bigint::BigUint::to_bytes_le` on the producer
//! side — this crate itself stays bigint-agnostic).

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Encodes values into a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder { buf: BytesMut::new() }
    }

    /// An encoder pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder { buf: BytesMut::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding and returns the immutable buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Writes a fixed-width u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Writes a fixed-width u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a fixed-width u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes a fixed-width i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.put_i32_le(v);
    }

    /// Writes an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes an f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Writes a LEB128 varint (used for lengths).
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes length-prefixed raw bytes (big integers, bitmaps, ...).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed slice of f64.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_varint(v.len() as u64);
        for &x in v {
            self.buf.put_f64_le(x);
        }
    }

    /// Writes a length-prefixed slice of u32.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_varint(v.len() as u64);
        for &x in v {
            self.buf.put_u32_le(x);
        }
    }

    /// Writes a bitmap as a length-prefixed packed byte array.
    /// The paper encodes instance placement this way to cut node-splitting
    /// traffic (§3.2).
    pub fn put_bitmap(&mut self, bits: &[bool]) {
        self.put_varint(bits.len() as u64);
        let mut byte = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.put_u8(byte);
                byte = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.buf.put_u8(byte);
        }
    }
}

const CRC32_POLY: u32 = 0xEDB8_8320;

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = build_crc32_table();

/// Incremental CRC-32 (IEEE 802.3 polynomial) over a byte stream.
///
/// Every link frame carries a CRC-32 over its header and payload; the
/// receiver recomputes it and rejects corrupt frames, which the
/// reliable-delivery sublayer then re-requests (see [`crate::link`]).
#[derive(Debug, Clone)]
pub struct Checksum {
    state: u32,
}

impl Checksum {
    /// A fresh checksum state.
    pub fn new() -> Checksum {
        Checksum { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = CRC32_TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finalizes and returns the CRC-32 value.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Checksum {
    fn default() -> Checksum {
        Checksum::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.finish()
}

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended mid-value.
    Truncated,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A string field held invalid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::InvalidUtf8 => write!(f, "invalid utf-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes values from a buffer produced by [`Encoder`].
#[derive(Debug)]
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps an encoded buffer.
    pub fn new(buf: Bytes) -> Decoder {
        Decoder { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a bool.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.get_u8()? != 0)
    }

    /// Reads a u16.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    /// Reads a u32.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a u64.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an i32.
    pub fn get_i32(&mut self) -> Result<i32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_i32_le())
    }

    /// Reads an f64.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads an f32.
    pub fn get_f32(&mut self) -> Result<f32, DecodeError> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    /// Reads a LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(DecodeError::VarintOverflow);
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Bytes, DecodeError> {
        let len = self.get_varint()? as usize;
        self.need(len)?;
        Ok(self.buf.copy_to_bytes(len))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Reads a length-prefixed f64 slice.
    pub fn get_f64_slice(&mut self) -> Result<Vec<f64>, DecodeError> {
        let len = self.get_varint()? as usize;
        self.need(len.saturating_mul(8))?;
        Ok((0..len).map(|_| self.buf.get_f64_le()).collect())
    }

    /// Reads a length-prefixed u32 slice.
    pub fn get_u32_slice(&mut self) -> Result<Vec<u32>, DecodeError> {
        let len = self.get_varint()? as usize;
        self.need(len.saturating_mul(4))?;
        Ok((0..len).map(|_| self.buf.get_u32_le()).collect())
    }

    /// Reads a packed bitmap.
    pub fn get_bitmap(&mut self) -> Result<Vec<bool>, DecodeError> {
        let len = self.get_varint()? as usize;
        let bytes = len.div_ceil(8);
        self.need(bytes)?;
        let mut out = Vec::with_capacity(len);
        let mut current = 0u8;
        for i in 0..len {
            if i % 8 == 0 {
                current = self.buf.get_u8();
            }
            out.push(current & (1 << (i % 8)) != 0);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u16(65535);
        e.put_u32(123456);
        e.put_u64(u64::MAX);
        e.put_i32(-42);
        e.put_f64(std::f64::consts::PI);
        e.put_f32(1.5);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_u8().unwrap(), 7);
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_u16().unwrap(), 65535);
        assert_eq!(d.get_u32().unwrap(), 123456);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i32().unwrap(), -42);
        assert_eq!(d.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(d.get_f32().unwrap(), 1.5);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn varint_round_trip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.put_varint(v);
            let mut d = Decoder::new(e.finish());
            assert_eq!(d.get_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_is_compact() {
        let mut e = Encoder::new();
        e.put_varint(5);
        assert_eq!(e.len(), 1);
        let mut e = Encoder::new();
        e.put_varint(300);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn bytes_and_strings() {
        let mut e = Encoder::new();
        e.put_bytes(&[1, 2, 3]);
        e.put_str("gradient");
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(d.get_str().unwrap(), "gradient");
    }

    #[test]
    fn slices_round_trip() {
        let mut e = Encoder::new();
        e.put_f64_slice(&[1.0, -2.5, 3.25]);
        e.put_u32_slice(&[9, 8, 7]);
        let mut d = Decoder::new(e.finish());
        assert_eq!(d.get_f64_slice().unwrap(), vec![1.0, -2.5, 3.25]);
        assert_eq!(d.get_u32_slice().unwrap(), vec![9, 8, 7]);
    }

    #[test]
    fn bitmap_round_trip_odd_lengths() {
        for len in [0usize, 1, 7, 8, 9, 64, 65] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let mut e = Encoder::new();
            e.put_bitmap(&bits);
            let mut d = Decoder::new(e.finish());
            assert_eq!(d.get_bitmap().unwrap(), bits, "len {len}");
        }
    }

    #[test]
    fn bitmap_is_eight_times_smaller_than_bytes() {
        let bits = vec![true; 800];
        let mut e = Encoder::new();
        e.put_bitmap(&bits);
        assert!(e.len() <= 103, "packed bitmap should be ~100 bytes, got {}", e.len());
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let mut e = Encoder::new();
        e.put_u64(1);
        let buf = e.finish().slice(0..4);
        let mut d = Decoder::new(buf);
        assert_eq!(d.get_u64(), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncated_slice_length_does_not_overallocate() {
        // A huge declared length with no data must fail cleanly.
        let mut e = Encoder::new();
        e.put_varint(u64::MAX);
        let mut d = Decoder::new(e.finish());
        assert!(d.get_f64_slice().is_err());
    }

    #[test]
    fn crc32_known_answer() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
    }

    #[test]
    fn crc32_incremental_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Checksum::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), checksum(data));
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let clean = checksum(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum(&flipped), clean, "flip at byte {i} bit {bit}");
            }
        }
    }
}
