//! # vf2-channel
//!
//! Cross-party communication for the federated protocol.
//!
//! The paper routes all cross-enterprise traffic through message queues on
//! gateway machines (Apache Pulsar) because the parties sit in different
//! data centers behind restricted networks (§3.1). This crate reproduces
//! the *behavioural* properties that matter to the protocol:
//!
//! * **Simulated WAN** — every message pays `latency + bytes/bandwidth` on
//!   a FIFO link (the paper's clusters talk over a 300 Mbps public link),
//!   so cipher size directly translates into transfer time, exactly the
//!   cost the blaster-style encryption and histogram packing attack.
//! * **Reliable exactly-once delivery** — sequence-numbered, CRC-32
//!   checksummed envelopes with cumulative acks, retransmission on
//!   timeout (exponential backoff + jitter), duplicate suppression and
//!   in-order reassembly (Pulsar's effectively-once semantics, hardened
//!   for a hostile wire).
//! * **Deterministic fault injection** — a seeded [`fault::FaultConfig`]
//!   plan makes each direction drop, duplicate, reorder, corrupt, stall
//!   or disconnect on schedule, so chaos tests replay bit-for-bit.
//! * **Transfer accounting** — per-link byte/message counters (Table 2's
//!   "network transmission per tree" row) plus fault counters
//!   (retransmissions, acks, corrupt frames rejected, duplicates
//!   suppressed).
//! * A compact binary [`codec`] whose encoded size *is* the wire size used
//!   by the WAN model.

#![warn(missing_docs)]
// Panic-free policy: non-test code may not unwrap/expect. Wire faults are
// expected operating conditions here, so every fallible path returns a
// typed error; the two thread-spawn `expect`s carry local `#[allow]`s with
// a justification. Enforced by ci.sh via `cargo clippy --lib -- -D warnings`.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod codec;
pub mod fault;
pub mod link;
pub mod malfeasant;

pub use codec::{checksum, Checksum, Decoder, Encoder};
pub use fault::{FaultConfig, ReliabilityConfig, StallWindow};
pub use link::{
    duplex, duplex_faulty, recv_ready, Endpoint, Envelope, LinkStats, RecvError, RecvReady,
    WanConfig,
};
pub use malfeasant::{MalfeasantPeer, Misdeed};
