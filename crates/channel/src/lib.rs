//! # vf2-channel
//!
//! Cross-party communication for the federated protocol.
//!
//! The paper routes all cross-enterprise traffic through message queues on
//! gateway machines (Apache Pulsar) because the parties sit in different
//! data centers behind restricted networks (§3.1). This crate reproduces
//! the *behavioural* properties that matter to the protocol:
//!
//! * **Simulated WAN** — every message pays `latency + bytes/bandwidth` on
//!   a FIFO link (the paper's clusters talk over a 300 Mbps public link),
//!   so cipher size directly translates into transfer time, exactly the
//!   cost the blaster-style encryption and histogram packing attack.
//! * **Effectively-once delivery** — sequence-numbered envelopes with
//!   duplicate suppression (Pulsar's effectively-once semantics).
//! * **Transfer accounting** — per-link byte/message counters (Table 2's
//!   "network transmission per tree" row).
//! * A compact binary [`codec`] whose encoded size *is* the wire size used
//!   by the WAN model.

#![warn(missing_docs)]

pub mod codec;
pub mod link;

pub use codec::{Decoder, Encoder};
pub use link::{duplex, Endpoint, Envelope, LinkStats, RecvError, WanConfig};
