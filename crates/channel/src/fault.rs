//! Deterministic fault plans for the simulated WAN.
//!
//! Cross-enterprise links in the paper's deployment traverse the public
//! internet between two data centers; packets get dropped, duplicated,
//! reordered, corrupted and occasionally the link blacks out entirely.
//! A [`FaultConfig`] describes one direction's misbehaviour as a seeded,
//! reproducible plan: every fault decision is drawn from a deterministic
//! RNG stream, so a failing run can be replayed bit-for-bit.
//!
//! Faults are injected inside the gateway pump thread (see
//! [`crate::link`]), *below* the reliable-delivery sublayer — the
//! protocol above only ever observes in-order, exactly-once, checksummed
//! envelopes (or a dead link).

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A timed full outage of one link direction: the wire transmits nothing
/// between `after` and `after + duration` (measured from link creation).
/// Frames queued during the window serialize once it lifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StallWindow {
    /// Outage start, relative to link creation.
    pub after: Duration,
    /// Outage length.
    pub duration: Duration,
}

/// Seeded fault plan for one link direction.
///
/// All probabilities are per transmitted frame (data and ack frames
/// alike, except corruption which only targets data payloads) and drawn
/// from an RNG stream seeded with `seed` — the same seed and traffic
/// pattern reproduce the same faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault decision stream.
    pub seed: u64,
    /// Probability a frame is silently dropped.
    pub drop_prob: f64,
    /// Probability a frame is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a frame is held back and overtaken by later frames.
    pub reorder_prob: f64,
    /// Maximum number of later frames that overtake a held-back frame.
    pub reorder_depth: usize,
    /// Probability a data frame has one payload bit flipped in flight.
    pub corrupt_prob: f64,
    /// Optional timed blackout window.
    pub stall: Option<StallWindow>,
    /// Scripted one-shot disconnect: after this many frames have entered
    /// the pump, the direction blackholes everything forever (the peer
    /// appears to die mid-protocol).
    pub disconnect_after_frames: Option<u64>,
}

impl FaultConfig {
    /// A fault-free link (the default).
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_depth: 0,
            corrupt_prob: 0.0,
            stall: None,
            disconnect_after_frames: None,
        }
    }

    /// A moderately hostile public-internet preset: 2% drop, 1% duplicate,
    /// 2% reorder (depth 3), 1% payload corruption.
    pub fn lossy(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            drop_prob: 0.02,
            duplicate_prob: 0.01,
            reorder_prob: 0.02,
            reorder_depth: 3,
            corrupt_prob: 0.01,
            stall: None,
            disconnect_after_frames: None,
        }
    }

    /// True if any fault can actually fire.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.duplicate_prob > 0.0
            || (self.reorder_prob > 0.0 && self.reorder_depth > 0)
            || self.corrupt_prob > 0.0
            || self.stall.is_some()
            || self.disconnect_after_frames.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

/// Tuning of the reliable-delivery sublayer (acks + retransmission).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityConfig {
    /// Retransmission timeout for a freshly sent frame.
    pub initial_rto: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_rto: Duration,
    /// Backoff multiplier applied after every retransmission.
    pub backoff: u32,
    /// Fractional random jitter added to each backed-off timeout
    /// (`rto * (1 + jitter_frac * U[0,1))`) to avoid retransmit storms.
    pub jitter_frac: f64,
    /// Wire size charged to an ack frame by the WAN model.
    pub ack_wire_bytes: usize,
}

impl Default for ReliabilityConfig {
    fn default() -> ReliabilityConfig {
        ReliabilityConfig {
            initial_rto: Duration::from_millis(40),
            max_rto: Duration::from_secs(1),
            backoff: 2,
            jitter_frac: 0.25,
            ack_wire_bytes: 16,
        }
    }
}

impl ReliabilityConfig {
    /// A fast-retransmit profile for local/instant links in tests.
    pub fn aggressive() -> ReliabilityConfig {
        ReliabilityConfig {
            initial_rto: Duration::from_millis(10),
            max_rto: Duration::from_millis(200),
            ..ReliabilityConfig::default()
        }
    }
}

/// The fault decisions for one frame, drawn from the plan's seeded
/// stream in a fixed order (drop, corrupt, reorder, duplicate) so the
/// stream depends only on the seed and the frame index — never on frame
/// contents or wall-clock timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAction {
    /// Silently drop the frame.
    pub drop: bool,
    /// Flip one payload bit (only meaningful for data frames).
    pub corrupt: bool,
    /// Hold the frame back until this many later frames overtake it
    /// (0 = deliver in order).
    pub hold_depth: usize,
    /// Deliver the frame twice.
    pub duplicate: bool,
}

impl FaultAction {
    /// A clean pass-through decision.
    pub fn deliver() -> FaultAction {
        FaultAction { drop: false, corrupt: false, hold_depth: 0, duplicate: false }
    }
}

/// The live, seeded instantiation of a [`FaultConfig`]: a deterministic
/// stream of per-frame [`FaultAction`]s. The gateway pump asks it what
/// to do with each frame; tests can replay the stream offline.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: StdRng,
    frames_seen: u64,
}

impl FaultPlan {
    /// Instantiates the plan's decision stream from its seed.
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan { cfg, rng: StdRng::seed_from_u64(cfg.seed), frames_seen: 0 }
    }

    /// The plan this stream was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True once the scripted disconnect has fired: the direction drops
    /// everything, forever.
    pub fn blackholed(&self) -> bool {
        matches!(self.cfg.disconnect_after_frames, Some(n) if self.frames_seen > n)
    }

    /// Draws the decisions for the next frame.
    pub fn next_frame(&mut self) -> FaultAction {
        self.frames_seen += 1;
        let drop = self.rng.gen_bool(self.cfg.drop_prob);
        let corrupt = self.rng.gen_bool(self.cfg.corrupt_prob);
        let reorder = self.cfg.reorder_depth > 0 && self.rng.gen_bool(self.cfg.reorder_prob);
        let hold_depth = if reorder { self.rng.gen_range(1..=self.cfg.reorder_depth) } else { 0 };
        let duplicate = self.rng.gen_bool(self.cfg.duplicate_prob);
        if self.blackholed() {
            return FaultAction { drop: true, ..FaultAction::deliver() };
        }
        FaultAction { drop, corrupt, hold_depth, duplicate }
    }

    /// The plan's RNG, for auxiliary draws (which payload bit to flip).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultConfig::none().is_active());
        assert!(!FaultConfig::default().is_active());
    }

    #[test]
    fn same_seed_replays_the_same_fault_stream() {
        let cfg = FaultConfig::lossy(0xFAB);
        let mut p1 = FaultPlan::new(cfg);
        let mut p2 = FaultPlan::new(cfg);
        let s1: Vec<FaultAction> = (0..2000).map(|_| p1.next_frame()).collect();
        let s2: Vec<FaultAction> = (0..2000).map(|_| p2.next_frame()).collect();
        assert_eq!(s1, s2);
        // Every configured fault class fires somewhere in 2000 frames.
        assert!(s1.iter().any(|a| a.drop));
        assert!(s1.iter().any(|a| a.corrupt));
        assert!(s1.iter().any(|a| a.hold_depth > 0));
        assert!(s1.iter().any(|a| a.duplicate));
        // A different seed diverges.
        let mut p3 = FaultPlan::new(FaultConfig::lossy(0xFAC));
        let s3: Vec<FaultAction> = (0..2000).map(|_| p3.next_frame()).collect();
        assert_ne!(s1, s3);
    }

    #[test]
    fn inactive_plan_always_delivers() {
        let mut plan = FaultPlan::new(FaultConfig::none());
        for _ in 0..100 {
            assert_eq!(plan.next_frame(), FaultAction::deliver());
        }
        assert!(!plan.blackholed());
    }

    #[test]
    fn scripted_disconnect_blackholes_from_the_cutoff() {
        let cfg = FaultConfig { disconnect_after_frames: Some(3), ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..3 {
            assert!(!plan.next_frame().drop);
        }
        for _ in 0..10 {
            assert!(plan.next_frame().drop);
            assert!(plan.blackholed());
        }
    }

    #[test]
    fn reorder_depth_is_bounded() {
        let cfg =
            FaultConfig { seed: 5, reorder_prob: 1.0, reorder_depth: 3, ..FaultConfig::none() };
        let mut plan = FaultPlan::new(cfg);
        for _ in 0..200 {
            let a = plan.next_frame();
            assert!((1..=3).contains(&a.hold_depth));
        }
    }

    #[test]
    fn presets_are_active() {
        assert!(FaultConfig::lossy(1).is_active());
        let disconnect = FaultConfig { disconnect_after_frames: Some(10), ..FaultConfig::none() };
        assert!(disconnect.is_active());
        let stalled = FaultConfig {
            stall: Some(StallWindow {
                after: Duration::from_millis(1),
                duration: Duration::from_millis(5),
            }),
            ..FaultConfig::none()
        };
        assert!(stalled.is_active());
    }
}
