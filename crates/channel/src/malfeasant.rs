//! A scriptable byzantine peer endpoint for conformance testing.
//!
//! [`MalfeasantPeer`] wraps an [`Endpoint`] and deviates from the honest
//! protocol *above* the transport: every misdeed is applied **before**
//! the frame is sequenced and checksummed, so the tampered frame arrives
//! transport-valid at the receiver. That is exactly the byzantine-peer
//! threat model — the reliability layer (checksums, dedup, in-order
//! reassembly) can do nothing about a peer that is lying at the protocol
//! level, and the receiver's admission layer has to catch it instead.
//!
//! The wrapper records every honest payload it was asked to send, so a
//! script (or a test) can replay any earlier protocol frame verbatim —
//! which the transport happily treats as a brand-new message.

use std::collections::HashMap;
use std::time::Duration;

use bytes::Bytes;

use crate::link::{Endpoint, Envelope, RecvError};

/// One scripted deviation, applied at a specific send index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Misdeed {
    /// Send honestly, then re-send the recorded frame at this history
    /// index as a fresh transport message (a protocol-level replay the
    /// transport dedup cannot see).
    ReplayEarlier(usize),
    /// Silently drop the frame instead of sending it.
    Swallow,
    /// Send the payload under a different wire kind tag.
    RewriteKind(u16),
    /// XOR one payload byte (at `offset % len`) before sending.
    FlipByte(usize),
    /// Truncate the payload to at most this many bytes.
    Truncate(usize),
}

/// An [`Endpoint`] wrapper that misbehaves on schedule.
#[derive(Debug)]
pub struct MalfeasantPeer {
    inner: Endpoint,
    /// Scripted deviations keyed by send index (0-based, counting only
    /// [`MalfeasantPeer::send`] calls).
    script: HashMap<u64, Misdeed>,
    sends: u64,
    /// Honest copies of everything sent, pre-misdeed.
    history: Vec<(u16, Bytes)>,
}

impl MalfeasantPeer {
    /// Wraps an endpoint with an empty script (fully honest until
    /// scripted otherwise).
    pub fn new(inner: Endpoint) -> MalfeasantPeer {
        MalfeasantPeer { inner, script: HashMap::new(), sends: 0, history: Vec::new() }
    }

    /// Schedules `misdeed` to fire at the `at`-th call to
    /// [`MalfeasantPeer::send`] (0-based). Later scripts for the same
    /// index replace earlier ones.
    pub fn script(&mut self, at: u64, misdeed: Misdeed) -> &mut MalfeasantPeer {
        self.script.insert(at, misdeed);
        self
    }

    /// Sends a message, applying whatever misdeed the script holds for
    /// this send index. The *honest* frame is recorded to history either
    /// way, so replays always reference what should have been sent.
    pub fn send(&mut self, kind: u16, payload: Bytes) {
        let idx = self.sends;
        self.sends += 1;
        self.history.push((kind, payload.clone()));
        match self.script.remove(&idx) {
            None => self.inner.send(kind, payload),
            Some(Misdeed::Swallow) => {}
            Some(Misdeed::RewriteKind(k)) => self.inner.send(k, payload),
            Some(Misdeed::FlipByte(offset)) => {
                let mut bytes = payload.to_vec();
                if let Some(len) = bytes.len().checked_sub(1) {
                    let at = offset % (len + 1);
                    bytes[at] ^= 0xa5;
                }
                self.inner.send(kind, Bytes::from(bytes));
            }
            Some(Misdeed::Truncate(len)) => {
                let cut = payload.slice(..len.min(payload.len()));
                self.inner.send(kind, cut);
            }
            Some(Misdeed::ReplayEarlier(i)) => {
                self.inner.send(kind, payload);
                self.replay(i);
            }
        }
    }

    /// Re-sends the recorded frame at history index `i` (if any) as a
    /// fresh transport message.
    pub fn replay(&mut self, i: usize) {
        if let Some((kind, payload)) = self.history.get(i).cloned() {
            self.inner.send(kind, payload);
        }
    }

    /// Sends a raw frame verbatim, bypassing the script and the history —
    /// the hook for hand-crafted semantic attacks.
    pub fn inject(&self, kind: u16, payload: Bytes) {
        self.inner.send(kind, payload);
    }

    /// Number of [`MalfeasantPeer::send`] calls so far.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// The honest frames recorded so far (kind, payload), pre-misdeed.
    pub fn history(&self) -> &[(u16, Bytes)] {
        &self.history
    }

    /// Receives the next message (delegates to the wrapped endpoint).
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.inner.recv()
    }

    /// Receives with a deadline (delegates to the wrapped endpoint).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.inner.recv_timeout(timeout)
    }

    /// Non-blocking receive (delegates to the wrapped endpoint).
    pub fn try_recv(&self) -> Option<Envelope> {
        self.inner.try_recv()
    }

    /// Blocks until the peer acked everything sent (delegates).
    pub fn flush(&self, timeout: Duration) -> bool {
        self.inner.flush(timeout)
    }

    /// The wrapped endpoint.
    pub fn endpoint(&self) -> &Endpoint {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{duplex, WanConfig};

    fn pair() -> (MalfeasantPeer, Endpoint) {
        let (a, b) = duplex(WanConfig::instant());
        (MalfeasantPeer::new(a), b)
    }

    #[test]
    fn unscripted_sends_are_honest() {
        let (mut evil, honest) = pair();
        evil.send(7, Bytes::from_static(b"hello"));
        let env = honest.recv().unwrap();
        assert_eq!((env.kind, &env.payload[..]), (7, &b"hello"[..]));
        assert_eq!(evil.sends(), 1);
        assert_eq!(evil.history().len(), 1);
    }

    #[test]
    fn swallow_drops_only_the_scripted_frame() {
        let (mut evil, honest) = pair();
        evil.script(0, Misdeed::Swallow);
        evil.send(1, Bytes::from_static(b"gone"));
        evil.send(2, Bytes::from_static(b"kept"));
        let env = honest.recv().unwrap();
        assert_eq!((env.kind, &env.payload[..]), (2, &b"kept"[..]));
    }

    #[test]
    fn replay_re_sends_an_earlier_frame_transport_validly() {
        let (mut evil, honest) = pair();
        evil.script(1, Misdeed::ReplayEarlier(0));
        evil.send(3, Bytes::from_static(b"first"));
        evil.send(4, Bytes::from_static(b"second"));
        let kinds: Vec<u16> = (0..3).map(|_| honest.recv().unwrap().kind).collect();
        // The transport delivers all three: dedup cannot catch a replay
        // that was re-sequenced by the sender.
        assert_eq!(kinds, vec![3, 4, 3]);
    }

    #[test]
    fn flip_and_truncate_arrive_transport_valid_but_mutated() {
        let (mut evil, honest) = pair();
        evil.script(0, Misdeed::FlipByte(1));
        evil.script(1, Misdeed::Truncate(2));
        evil.script(2, Misdeed::RewriteKind(9));
        evil.send(5, Bytes::from_static(b"abcd"));
        evil.send(5, Bytes::from_static(b"abcd"));
        evil.send(5, Bytes::from_static(b"abcd"));
        let a = honest.recv().unwrap();
        assert_eq!(&a.payload[..], &[b'a', b'b' ^ 0xa5, b'c', b'd']);
        let b = honest.recv().unwrap();
        assert_eq!(&b.payload[..], b"ab");
        let c = honest.recv().unwrap();
        assert_eq!(c.kind, 9);
        // The honest history is untouched by the misdeeds.
        assert!(evil.history().iter().all(|(k, p)| *k == 5 && &p[..] == b"abcd"));
    }

    #[test]
    fn flip_byte_on_an_empty_payload_is_a_no_op() {
        let (mut evil, honest) = pair();
        evil.script(0, Misdeed::FlipByte(3));
        evil.send(6, Bytes::new());
        let env = honest.recv().unwrap();
        assert!(env.payload.is_empty());
    }
}
