//! Simulated cross-party WAN links with reliable, exactly-once delivery
//! over a faulty wire.
//!
//! A [`duplex`] call returns two [`Endpoint`]s wired back-to-back through
//! two one-directional simulated links. Each direction has a gateway pump
//! thread that models the wire:
//!
//! * messages serialize onto the wire FIFO at `bandwidth` bytes/sec (a
//!   sender never overtakes an earlier message),
//! * every message additionally experiences a propagation `latency`
//!   (messages pipeline: a second message does not wait for the first's
//!   latency, only for its serialization),
//! * with [`duplex_faulty`], the pump additionally injects a seeded,
//!   deterministic [`FaultConfig`] plan: drops, duplicates, bounded
//!   reordering, payload bit flips, timed stalls and scripted
//!   disconnects.
//!
//! Above the wire sits a reliable-delivery sublayer modeled on the
//! paper's Pulsar gateway queues: every data frame carries a CRC-32
//! (see [`crate::codec::Checksum`]) and a monotone sequence number; the
//! receiver acknowledges cumulatively, delivers strictly in order
//! (exactly-once), and the sender retransmits unacked frames on a
//! timeout with exponential backoff and jitter. The protocol above the
//! endpoints therefore sees clean, ordered envelopes regardless of wire
//! faults — or a [`RecvError`] if the peer is truly gone.
//!
//! ## Timeouts
//!
//! [`Endpoint::recv`] blocks until a message has fully "arrived" per the
//! WAN model. [`Endpoint::recv_timeout`] is the liveness escape hatch:
//! it returns [`RecvError::Timeout`] once the deadline passes with no
//! delivery, without consuming any in-flight message — callers decide
//! whether to retry or declare the peer lost. A stalled or blackholed
//! link therefore surfaces as `Timeout` at the configured deadline
//! rather than hanging forever (the federated driver in `vf2boost-core`
//! maps this to its `PeerLost` error).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::codec::Checksum;
use crate::fault::{FaultConfig, FaultPlan, ReliabilityConfig};

/// WAN characteristics of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanConfig {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency.
    pub latency: Duration,
    /// Fixed framing overhead charged per message (headers, auth token).
    pub per_message_overhead_bytes: usize,
}

impl WanConfig {
    /// The paper's environment: 300 Mbps public bandwidth between the two
    /// data centers, with a nominal 10 ms one-way latency.
    pub fn paper_public_network() -> WanConfig {
        WanConfig {
            bandwidth_bytes_per_sec: 300.0e6 / 8.0,
            latency: Duration::from_millis(10),
            per_message_overhead_bytes: 64,
        }
    }

    /// An effectively-infinite link for tests (no sleeping).
    pub fn instant() -> WanConfig {
        WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::ZERO,
            per_message_overhead_bytes: 0,
        }
    }

    /// Serialization time of a payload of `bytes` bytes.
    pub fn serialize_time(&self, bytes: usize) -> Duration {
        let total = (bytes + self.per_message_overhead_bytes) as f64;
        if self.bandwidth_bytes_per_sec.is_finite() && self.bandwidth_bytes_per_sec > 0.0 {
            Duration::from_secs_f64(total / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        }
    }
}

/// A routed message: a kind tag for dispatch, a sequence number for
/// exactly-once ordered delivery, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Message-kind tag (the protocol's discriminant).
    pub kind: u16,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Serialized message body.
    pub payload: Bytes,
}

/// Cumulative statistics of one link direction (data flowing A→B lives
/// in one `LinkStats`, acks for that data count here too even though
/// they physically travel B→A).
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Application messages sent.
    pub messages: AtomicU64,
    /// Application payload bytes sent (excluding framing overhead).
    pub bytes: AtomicU64,
    /// Duplicates suppressed at the receiver.
    pub duplicates_dropped: AtomicU64,
    /// Data frames retransmitted after an RTO expiry.
    pub retransmissions: AtomicU64,
    /// Ack frames received for this direction's data.
    pub acks_received: AtomicU64,
    /// Frames rejected at the receiver due to checksum mismatch.
    pub corrupt_rejected: AtomicU64,
    /// Frames the fault plan silently dropped (including blackholes).
    pub faults_dropped: AtomicU64,
    /// Data frames the fault plan corrupted in flight.
    pub faults_corrupted: AtomicU64,
    /// Frames the fault plan held back for reordering.
    pub faults_reordered: AtomicU64,
    /// Frames the fault plan delivered twice.
    pub faults_duplicated: AtomicU64,
}

macro_rules! stats_getters {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&self) -> u64 {
                self.$name.load(Ordering::Relaxed)
            }
        )+
    };
}

impl LinkStats {
    stats_getters! {
        /// Application messages sent so far.
        messages,
        /// Application payload bytes sent so far.
        bytes,
        /// Duplicates dropped so far.
        duplicates_dropped,
        /// Retransmissions so far.
        retransmissions,
        /// Acks received so far.
        acks_received,
        /// Corrupt frames rejected so far.
        corrupt_rejected,
        /// Frames dropped by fault injection so far.
        faults_dropped,
        /// Frames corrupted by fault injection so far.
        faults_corrupted,
        /// Frames reordered by fault injection so far.
        faults_reordered,
        /// Frames duplicated by fault injection so far.
        faults_duplicated,
    }
}

/// Receive-side failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The peer endpoint was dropped and the queue is drained.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "peer disconnected"),
            RecvError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RecvError {}

/// What actually travels over the simulated wire.
#[derive(Debug, Clone)]
enum Frame {
    /// An application envelope plus its CRC-32.
    Data { env: Envelope, checksum: u32 },
    /// Cumulative acknowledgement: every seq `<= cum_seq` arrived intact.
    Ack { cum_seq: u64 },
}

/// CRC-32 over a frame's header and payload.
fn frame_checksum(kind: u16, seq: u64, payload: &[u8]) -> u32 {
    let mut c = Checksum::new();
    c.update(&kind.to_le_bytes());
    c.update(&seq.to_le_bytes());
    c.update(payload);
    c.finish()
}

/// An unacked frame awaiting (re)transmission.
struct Pending {
    env: Envelope,
    checksum: u32,
    next_at: Instant,
    rto: Duration,
}

type RetxBuffer = BTreeMap<u64, Pending>;

/// How often blocked link threads poll for shutdown.
const LINK_TICK: Duration = Duration::from_millis(20);

/// One end of a duplex cross-party link.
///
/// Dropping an endpoint tears down its side of the link; the peer then
/// observes [`RecvError::Disconnected`] once its delivery queue drains.
pub struct Endpoint {
    raw_tx: Sender<Frame>,
    delivered_rx: Receiver<Envelope>,
    next_seq: AtomicU64,
    retx: Arc<Mutex<RetxBuffer>>,
    rel: ReliabilityConfig,
    send_stats: Arc<LinkStats>,
    recv_stats: Arc<LinkStats>,
    shutdown: Arc<AtomicBool>,
    last_heard: Arc<Mutex<Instant>>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("sent", &self.send_stats.messages())
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Endpoint {
    /// Sends a message. Never blocks on the WAN simulation (the sender
    /// hands the message to the gateway queue and proceeds — this is what
    /// lets the blaster scheme overlap encryption with transfer). The
    /// frame stays in the retransmit buffer until the peer acknowledges
    /// it, so wire faults cannot lose it.
    pub fn send(&self, kind: u16, payload: Bytes) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.send_stats.messages.fetch_add(1, Ordering::Relaxed);
        self.send_stats.bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        let checksum = frame_checksum(kind, seq, &payload);
        let env = Envelope { kind, seq, payload };
        self.retx.lock().insert(
            seq,
            Pending {
                env: env.clone(),
                checksum,
                next_at: Instant::now() + self.rel.initial_rto,
                rto: self.rel.initial_rto,
            },
        );
        // Ignore a disconnected peer: protocol teardown races are benign.
        let _ = self.raw_tx.send(Frame::Data { env, checksum });
    }

    /// Sends a pre-built envelope verbatim, bypassing sequence assignment
    /// and the retransmit buffer (test hook for duplicate injection;
    /// normal code uses [`Endpoint::send`]). The envelope should reuse an
    /// already-assigned sequence number — a gap the sender never fills
    /// would stall the receiver's in-order delivery.
    pub fn send_envelope_raw(&self, env: Envelope) {
        self.send_stats.messages.fetch_add(1, Ordering::Relaxed);
        self.send_stats.bytes.fetch_add(env.payload.len() as u64, Ordering::Relaxed);
        let checksum = frame_checksum(env.kind, env.seq, &env.payload);
        let _ = self.raw_tx.send(Frame::Data { env, checksum });
    }

    /// Receives the next message, blocking until it has "arrived" per the
    /// WAN model. Delivery is exactly-once and strictly in sequence
    /// order; duplicates and corrupt frames are handled below this call.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        self.delivered_rx.recv().map_err(|_| RecvError::Disconnected)
    }

    /// Receives with a deadline. Returns [`RecvError::Timeout`] if no
    /// message has fully arrived within `timeout`; no in-flight message
    /// is consumed or lost by timing out, so callers may retry. This is
    /// the primitive the federated driver builds its per-phase peer
    /// deadlines on: a stalled link fires `Timeout` at the configured
    /// deadline instead of hanging.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        self.delivered_rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Non-blocking receive: returns a message only if one has fully
    /// arrived.
    pub fn try_recv(&self) -> Option<Envelope> {
        self.delivered_rx.try_recv().ok()
    }

    /// Blocks until every frame this endpoint sent has been acknowledged
    /// by the peer, or `timeout` expires. Returns `true` when the
    /// retransmit buffer drained.
    ///
    /// Call this before dropping the endpoint after a final message (an
    /// orderly `Shutdown`): dropping tears the link down, and a frame
    /// the fault plan happened to drop would otherwise die in the
    /// retransmit buffer — turning a clean goodbye into a peer-side
    /// `Disconnected`.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.retx.lock().is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Time since this endpoint last heard *anything* intact from the
    /// peer — a checksum-valid data frame (even a duplicate) or an ack.
    ///
    /// This is the liveness signal heartbeat supervision builds on: the
    /// peer's reliability thread acks incoming data regardless of what
    /// its application thread is doing, so a peer that is merely busy
    /// computing still keeps this fresh, while a dead process or a
    /// blackholed direction lets it grow without bound.
    pub fn idle_for(&self) -> Duration {
        self.last_heard.lock().elapsed()
    }

    /// Statistics of the direction this endpoint sends on.
    pub fn send_stats(&self) -> &Arc<LinkStats> {
        &self.send_stats
    }

    /// Statistics of the direction this endpoint receives on.
    pub fn recv_stats(&self) -> &Arc<LinkStats> {
        &self.recv_stats
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Wake the reliability thread out of its retransmit loop so the
        // teardown cascade (rel thread → pump → peer) can proceed.
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Outcome of a [`recv_ready`] wait across several endpoints.
#[derive(Debug, Clone, PartialEq)]
pub enum RecvReady {
    /// A message fully arrived on `endpoints[idx]`.
    Msg(usize, Envelope),
    /// `endpoints[idx]` is torn down and its delivery queue is drained.
    Disconnected(usize),
    /// Nothing arrived anywhere within the timeout.
    Timeout,
}

/// Waits on several endpoints at once, returning the first fully-arrived
/// message — or which endpoint disconnected, or a timeout.
///
/// This is the wakeup-based primitive a multi-party driver builds its
/// event queue on: the calling thread parks on every delivery queue
/// simultaneously (one shared condvar-backed waker registered on each
/// queue) instead of round-robin polling each endpoint with a short
/// `recv_timeout` — which burns a full core the moment two or more peers
/// are live.
///
/// Two properties callers rely on:
///
/// * **Deterministic harvest order.** When several endpoints have a
///   message ready, the *lowest index* wins, not `Select`'s randomized
///   pick. (Protocol determinism must never depend on this — decisions
///   key off complete per-node message sets — but a stable order keeps
///   traces and fault attribution reproducible.)
/// * **No consumption on timeout.** Like [`Endpoint::recv_timeout`], a
///   `Timeout` result consumes nothing; callers retry or escalate.
pub fn recv_ready(endpoints: &[&Endpoint], timeout: Duration) -> RecvReady {
    use crossbeam::channel::{TryRecvError, Waker};
    let deadline = Instant::now() + timeout;
    if endpoints.is_empty() {
        thread::sleep(timeout);
        return RecvReady::Timeout;
    }
    // Register the shared waker on every queue *before* the readiness
    // scan: a delivery racing the scan latches the waker, so the wakeup
    // cannot be lost between scan and park.
    let waker = Waker::new();
    for ep in endpoints {
        ep.delivered_rx.register_waker(&waker);
    }
    let outcome = loop {
        // Index-ordered harvest: scan for anything already delivered (or
        // a torn-down queue) before parking. The lowest index wins ties.
        let mut hit = None;
        for (idx, ep) in endpoints.iter().enumerate() {
            match ep.delivered_rx.try_recv() {
                Ok(env) => {
                    hit = Some(RecvReady::Msg(idx, env));
                    break;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => {
                    hit = Some(RecvReady::Disconnected(idx));
                    break;
                }
            }
        }
        if let Some(outcome) = hit {
            break outcome;
        }
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break RecvReady::Timeout;
        }
        // Park until some queue signals (delivery or disconnect); then
        // loop back and classify via the index-ordered scan. A spurious
        // or already-consumed wakeup simply re-parks for the remainder.
        waker.wait_timeout(remaining);
    };
    for ep in endpoints {
        ep.delivered_rx.clear_waker(&waker);
    }
    outcome
}

fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        thread::sleep(deadline - now);
    }
}

/// Creates a duplex link: two endpoints, each direction simulated with
/// `cfg`, fault-free.
pub fn duplex(cfg: WanConfig) -> (Endpoint, Endpoint) {
    duplex_faulty(cfg, FaultConfig::none(), FaultConfig::none(), ReliabilityConfig::default())
}

/// Creates a duplex link whose directions misbehave per the given fault
/// plans (`fault_ab` applies to frames A→B, `fault_ba` to B→A). The
/// reliable-delivery sublayer masks every fault except a permanent
/// disconnect: application messages arrive exactly once, in order,
/// bit-intact.
pub fn duplex_faulty(
    cfg: WanConfig,
    fault_ab: FaultConfig,
    fault_ba: FaultConfig,
    rel: ReliabilityConfig,
) -> (Endpoint, Endpoint) {
    let ab_stats = Arc::new(LinkStats::default());
    let ba_stats = Arc::new(LinkStats::default());

    let (a_tx, ab_pump_rx) = unbounded::<Frame>();
    let (ab_wire_tx, ab_wire_rx) = unbounded::<(Instant, Frame)>();
    spawn_pump(cfg, fault_ab, rel, ab_pump_rx, ab_wire_tx, ab_stats.clone());

    let (b_tx, ba_pump_rx) = unbounded::<Frame>();
    let (ba_wire_tx, ba_wire_rx) = unbounded::<(Instant, Frame)>();
    spawn_pump(cfg, fault_ba, rel, ba_pump_rx, ba_wire_tx, ba_stats.clone());

    let a =
        spawn_endpoint(a_tx, ba_wire_rx, rel, ab_stats.clone(), ba_stats.clone(), fault_ab.seed);
    let b = spawn_endpoint(b_tx, ab_wire_rx, rel, ba_stats, ab_stats, fault_ba.seed);
    (a, b)
}

/// Builds one endpoint and spawns its reliability thread, which owns the
/// incoming wire, the ack generation, and the retransmit timer.
fn spawn_endpoint(
    raw_tx: Sender<Frame>,
    incoming: Receiver<(Instant, Frame)>,
    rel: ReliabilityConfig,
    send_stats: Arc<LinkStats>,
    recv_stats: Arc<LinkStats>,
    jitter_seed: u64,
) -> Endpoint {
    let (delivered_tx, delivered_rx) = unbounded::<Envelope>();
    let retx: Arc<Mutex<RetxBuffer>> = Arc::new(Mutex::new(BTreeMap::new()));
    let shutdown = Arc::new(AtomicBool::new(false));
    let last_heard = Arc::new(Mutex::new(Instant::now()));
    {
        let raw_tx = raw_tx.clone();
        let retx = retx.clone();
        let send_stats = send_stats.clone();
        let recv_stats = recv_stats.clone();
        let shutdown = shutdown.clone();
        let last_heard = last_heard.clone();
        // Spawning can only fail on OS thread exhaustion at link setup,
        // before any federated state exists; aborting there is the only
        // sane response and nothing needs unwinding.
        #[allow(clippy::expect_used)]
        thread::Builder::new()
            .name("vf2-link-rel".into())
            .spawn(move || {
                reliability_loop(
                    incoming,
                    raw_tx,
                    delivered_tx,
                    retx,
                    rel,
                    send_stats,
                    recv_stats,
                    shutdown,
                    last_heard,
                    jitter_seed,
                );
            })
            .expect("spawn link reliability thread");
    }
    Endpoint {
        raw_tx,
        delivered_rx,
        next_seq: AtomicU64::new(0),
        retx,
        rel,
        send_stats,
        recv_stats,
        shutdown,
        last_heard,
    }
}

/// Receiver-side reliable delivery plus sender-side retransmission.
#[allow(clippy::too_many_arguments)]
fn reliability_loop(
    incoming: Receiver<(Instant, Frame)>,
    raw_tx: Sender<Frame>,
    delivered_tx: Sender<Envelope>,
    retx: Arc<Mutex<RetxBuffer>>,
    rel: ReliabilityConfig,
    send_stats: Arc<LinkStats>,
    recv_stats: Arc<LinkStats>,
    shutdown: Arc<AtomicBool>,
    last_heard: Arc<Mutex<Instant>>,
    jitter_seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(jitter_seed ^ 0x5EED_AC4E);
    // Next in-order sequence number to deliver to the application.
    let mut expected: u64 = 0;
    // Out-of-order frames parked until the gap before them is filled.
    let mut parked: BTreeMap<u64, Envelope> = BTreeMap::new();
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        let mut wait = LINK_TICK;
        if let Some(due) = retx.lock().values().map(|p| p.next_at).min() {
            wait = wait.min(due.saturating_duration_since(now));
        }
        match incoming.recv_timeout(wait) {
            Ok((deliver_at, frame)) => {
                // Honor the WAN model: the frame exists only once it has
                // propagated.
                sleep_until(deliver_at);
                match frame {
                    Frame::Data { env, checksum } => {
                        if frame_checksum(env.kind, env.seq, &env.payload) != checksum {
                            // Reject silently; the missing ack makes the
                            // sender re-send an intact copy. A corrupt
                            // frame cannot be authenticated, so it does
                            // not count as hearing from the peer.
                            recv_stats.corrupt_rejected.fetch_add(1, Ordering::Relaxed);
                        } else if env.seq < expected || parked.contains_key(&env.seq) {
                            *last_heard.lock() = Instant::now();
                            recv_stats.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            *last_heard.lock() = Instant::now();
                            parked.insert(env.seq, env);
                            while let Some(next) = parked.remove(&expected) {
                                if delivered_tx.send(next).is_err() {
                                    // Application endpoint is gone.
                                    return;
                                }
                                expected += 1;
                            }
                        }
                        // Cumulative ack (also re-sent on duplicates and
                        // corruption, so lost acks heal themselves).
                        if expected > 0 {
                            let _ = raw_tx.send(Frame::Ack { cum_seq: expected - 1 });
                        }
                    }
                    Frame::Ack { cum_seq } => {
                        *last_heard.lock() = Instant::now();
                        send_stats.acks_received.fetch_add(1, Ordering::Relaxed);
                        let mut buffer = retx.lock();
                        let keep = buffer.split_off(&(cum_seq + 1));
                        *buffer = keep;
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
        // Retransmit everything past its deadline, with exponential
        // backoff and jitter so repeated losses don't synchronize.
        let now = Instant::now();
        let mut buffer = retx.lock();
        for pending in buffer.values_mut() {
            if pending.next_at <= now {
                send_stats.retransmissions.fetch_add(1, Ordering::Relaxed);
                let _ = raw_tx
                    .send(Frame::Data { env: pending.env.clone(), checksum: pending.checksum });
                pending.rto = pending.rto.saturating_mul(rel.backoff).min(rel.max_rto);
                let jitter = 1.0 + rel.jitter_frac * rng.gen::<f64>();
                pending.next_at = now + pending.rto.mul_f64(jitter);
            }
        }
    }
}

/// Spawns one direction's gateway pump: wire pacing plus fault injection.
fn spawn_pump(
    cfg: WanConfig,
    fault: FaultConfig,
    rel: ReliabilityConfig,
    pump_rx: Receiver<Frame>,
    wire_tx: Sender<(Instant, Frame)>,
    stats: Arc<LinkStats>,
) {
    // As above: thread spawn only fails on OS resource exhaustion during
    // link construction, before the protocol starts; abort is correct.
    #[allow(clippy::expect_used)]
    thread::Builder::new()
        .name("vf2-gateway-pump".into())
        .spawn(move || {
            let mut plan = FaultPlan::new(fault);
            let born = Instant::now();
            // `wire_free_at` enforces FIFO serialization: each frame
            // occupies the wire for its serialization time.
            let mut wire_free_at = born;
            // Frames held back by the reorder fault: (frames still to
            // overtake this one, frame).
            let mut held: Vec<(usize, Frame)> = Vec::new();
            'pump: loop {
                let frame = match pump_rx.recv_timeout(LINK_TICK) {
                    Ok(f) => Some(f),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                };
                let mut to_send: Vec<Frame> = Vec::new();
                match frame {
                    Some(mut frame) => {
                        let action = plan.next_frame();
                        if plan.blackholed() {
                            stats.faults_dropped.fetch_add(1, Ordering::Relaxed);
                            held.clear();
                            continue;
                        }
                        // Every later frame ages the reorder holds.
                        for h in &mut held {
                            h.0 = h.0.saturating_sub(1);
                        }
                        if action.drop {
                            stats.faults_dropped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            if action.corrupt {
                                if let Frame::Data { env, .. } = &mut frame {
                                    corrupt_payload(env, plan.rng());
                                    stats.faults_corrupted.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            if action.hold_depth > 0 {
                                held.push((action.hold_depth, frame));
                                stats.faults_reordered.fetch_add(1, Ordering::Relaxed);
                            } else if action.duplicate {
                                stats.faults_duplicated.fetch_add(1, Ordering::Relaxed);
                                to_send.push(frame.clone());
                                to_send.push(frame);
                            } else {
                                to_send.push(frame);
                            }
                        }
                    }
                    // Idle tick: flush every hold so reordering at the
                    // tail of a burst doesn't become a permanent drop.
                    None => {
                        for h in &mut held {
                            h.0 = 0;
                        }
                    }
                }
                let mut i = 0;
                while i < held.len() {
                    if held[i].0 == 0 {
                        to_send.push(held.remove(i).1);
                    } else {
                        i += 1;
                    }
                }
                for f in to_send {
                    let now = Instant::now();
                    let mut start = wire_free_at.max(now);
                    if let Some(window) = fault.stall {
                        let stall_start = born + window.after;
                        let stall_end = stall_start + window.duration;
                        if start >= stall_start && start < stall_end {
                            start = stall_end;
                        }
                    }
                    let size = match &f {
                        Frame::Data { env, .. } => env.payload.len(),
                        Frame::Ack { .. } => rel.ack_wire_bytes,
                    };
                    wire_free_at = start + cfg.serialize_time(size);
                    // Pace the pump so the sender-side queue drains at
                    // wire speed (models gateway back-pressure without
                    // blocking the send call itself).
                    sleep_until(wire_free_at);
                    let deliver_at = wire_free_at + cfg.latency;
                    if wire_tx.send((deliver_at, f)).is_err() {
                        break 'pump;
                    }
                }
            }
        })
        .expect("spawn gateway pump thread");
}

/// Flips one random payload bit (the advertised checksum is left alone,
/// so the receiver detects the damage). Empty payloads grow a junk byte
/// instead, which equally breaks the checksum.
fn corrupt_payload(env: &mut Envelope, rng: &mut StdRng) {
    let mut bytes = env.payload.to_vec();
    if bytes.is_empty() {
        bytes.push(0xFF);
    } else {
        let byte = rng.gen_range(0..bytes.len());
        let bit = rng.gen_range(0u32..8);
        bytes[byte] ^= 1 << bit;
    }
    env.payload = Bytes::from(bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::StallWindow;

    #[test]
    fn flush_drains_once_the_peer_acks() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(1, Bytes::from_static(b"hello"));
        assert_eq!(b.recv().unwrap().kind, 1);
        // Receipt triggers the cumulative ack; the buffer must drain.
        assert!(a.flush(Duration::from_secs(5)));
        // A dropped peer can never ack: flush times out with `false`.
        drop(b);
        a.send(2, Bytes::from_static(b"void"));
        assert!(!a.flush(Duration::from_millis(50)));
    }

    #[test]
    fn messages_round_trip_in_order() {
        let (a, b) = duplex(WanConfig::instant());
        for i in 0..10u16 {
            a.send(i, Bytes::from(vec![i as u8; 4]));
        }
        for i in 0..10u16 {
            let env = b.recv().unwrap();
            assert_eq!(env.kind, i);
            assert_eq!(env.payload.as_ref(), &[i as u8; 4]);
        }
    }

    #[test]
    fn duplex_is_bidirectional() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(1, Bytes::from_static(b"ping"));
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"ping");
        b.send(2, Bytes::from_static(b"pong"));
        assert_eq!(a.recv().unwrap().payload.as_ref(), b"pong");
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::from_millis(30),
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from_static(b"x"));
        b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn bandwidth_serializes_large_messages() {
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: 1.0e6, // 1 MB/s
            latency: Duration::ZERO,
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from(vec![0u8; 50_000])); // 50 ms on the wire
        b.recv().unwrap();
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(45), "took {dt:?}");
    }

    #[test]
    fn messages_pipeline_through_latency() {
        // Two messages with high latency but instant serialization should
        // take ~1 latency total, not ~2 (they overlap in flight).
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::from_millis(40),
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from_static(b"1"));
        a.send(1, Bytes::from_static(b"2"));
        b.recv().unwrap();
        b.recv().unwrap();
        let dt = t0.elapsed();
        assert!(dt < Duration::from_millis(75), "messages should pipeline, took {dt:?}");
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(0, Bytes::from_static(b"first")); // seq 0
        a.send_envelope_raw(Envelope { kind: 0, seq: 0, payload: Bytes::from_static(b"first") });
        a.send(1, Bytes::from_static(b"second")); // seq 1
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"first");
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"second");
        assert!(b.recv_stats().duplicates_dropped() >= 1);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(0, Bytes::from(vec![0u8; 100]));
        a.send(0, Bytes::from(vec![0u8; 28]));
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(a.send_stats().messages(), 2);
        assert_eq!(a.send_stats().bytes(), 128);
        assert_eq!(b.recv_stats().bytes(), 128); // same direction object
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (a, b) = duplex(WanConfig::instant());
        drop(a);
        // Give the teardown cascade (rel thread → pump → peer) a moment.
        assert_eq!(b.recv_timeout(Duration::from_millis(500)), Err(RecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_when_silent() {
        let (_a, b) = duplex(WanConfig::instant());
        let t0 = Instant::now();
        assert_eq!(b.recv_timeout(Duration::from_millis(30)), Err(RecvError::Timeout));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let (_a, b) = duplex(WanConfig::instant());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn recv_ready_wakes_on_any_endpoint() {
        let (a1, b1) = duplex(WanConfig::instant());
        let (_a2, b2) = duplex(WanConfig::instant());
        a1.send(7, Bytes::from_static(b"wake"));
        match recv_ready(&[&b2, &b1], Duration::from_secs(5)) {
            RecvReady::Msg(idx, env) => {
                assert_eq!(idx, 1);
                assert_eq!(env.kind, 7);
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn recv_ready_times_out_without_spinning() {
        let (_a1, b1) = duplex(WanConfig::instant());
        let (_a2, b2) = duplex(WanConfig::instant());
        let t0 = Instant::now();
        assert_eq!(recv_ready(&[&b1, &b2], Duration::from_millis(40)), RecvReady::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn recv_ready_prefers_the_lowest_index() {
        let (a1, b1) = duplex(WanConfig::instant());
        let (a2, b2) = duplex(WanConfig::instant());
        a1.send(1, Bytes::from_static(b"one"));
        a2.send(2, Bytes::from_static(b"two"));
        // Let both deliveries land so the pick is a genuine tie-break.
        thread::sleep(Duration::from_millis(50));
        match recv_ready(&[&b1, &b2], Duration::from_secs(5)) {
            RecvReady::Msg(idx, env) => {
                assert_eq!(idx, 0, "index order must win the tie");
                assert_eq!(env.kind, 1);
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn recv_ready_names_the_disconnected_endpoint() {
        let (_a1, b1) = duplex(WanConfig::instant());
        let (a2, b2) = duplex(WanConfig::instant());
        drop(a2);
        // Give the teardown cascade a moment to drain the delivery queue.
        thread::sleep(Duration::from_millis(200));
        assert_eq!(recv_ready(&[&b1, &b2], Duration::from_secs(5)), RecvReady::Disconnected(1));
    }

    #[test]
    fn recv_ready_consumes_nothing_on_timeout() {
        let (a1, b1) = duplex(WanConfig::instant());
        let (_a2, b2) = duplex(WanConfig::instant());
        assert_eq!(recv_ready(&[&b1, &b2], Duration::from_millis(20)), RecvReady::Timeout);
        a1.send(9, Bytes::from_static(b"later"));
        match recv_ready(&[&b1, &b2], Duration::from_secs(5)) {
            RecvReady::Msg(0, env) => assert_eq!(env.kind, 9),
            other => panic!("expected message on 0, got {other:?}"),
        }
    }

    #[test]
    fn idle_for_resets_on_traffic_and_grows_during_silence() {
        let (a, b) = duplex(WanConfig::instant());
        thread::sleep(Duration::from_millis(40));
        assert!(b.idle_for() >= Duration::from_millis(35));
        a.send(0, Bytes::from_static(b"alive"));
        b.recv().unwrap();
        // Receipt of the intact frame resets the receiver's clock, and
        // the cumulative ack coming back resets the sender's too.
        assert!(b.idle_for() < Duration::from_millis(35));
        assert!(a.flush(Duration::from_secs(5)));
        assert!(a.idle_for() < Duration::from_millis(100));
        // Renewed silence grows both clocks again.
        thread::sleep(Duration::from_millis(40));
        assert!(b.idle_for() >= Duration::from_millis(35));
        assert!(a.idle_for() >= Duration::from_millis(35));
    }

    #[test]
    fn paper_network_serialization_math() {
        let cfg = WanConfig::paper_public_network();
        // A 512-byte cipher + 64B overhead at 37.5 MB/s ≈ 15.4 µs.
        let t = cfg.serialize_time(512);
        assert!(t > Duration::from_micros(14) && t < Duration::from_micros(17), "{t:?}");
    }

    // ---- fault injection + reliable delivery ----

    /// Sends `n` tagged messages A→B over a faulty link and checks they
    /// arrive exactly once, in order, bit-intact.
    fn assert_reliable_delivery(fault: FaultConfig, n: u64) -> (Endpoint, Endpoint) {
        let (a, b) =
            duplex_faulty(WanConfig::instant(), fault, fault, ReliabilityConfig::aggressive());
        for i in 0..n {
            a.send((i % 7) as u16, Bytes::from(i.to_le_bytes().to_vec()));
        }
        for i in 0..n {
            let env = b.recv_timeout(Duration::from_secs(20)).unwrap();
            assert_eq!(env.seq, i);
            assert_eq!(env.kind, (i % 7) as u16);
            assert_eq!(env.payload.as_ref(), &i.to_le_bytes());
        }
        (a, b)
    }

    #[test]
    fn drops_are_masked_by_retransmission() {
        let fault = FaultConfig { seed: 11, drop_prob: 0.2, ..FaultConfig::none() };
        let (a, _b) = assert_reliable_delivery(fault, 100);
        assert!(a.send_stats().faults_dropped() > 0, "plan never fired");
        assert!(a.send_stats().retransmissions() > 0);
        assert!(a.send_stats().acks_received() > 0);
    }

    #[test]
    fn corruption_is_rejected_and_retransmitted() {
        let fault = FaultConfig { seed: 12, corrupt_prob: 0.2, ..FaultConfig::none() };
        let (a, _b) = assert_reliable_delivery(fault, 100);
        assert!(a.send_stats().faults_corrupted() > 0, "plan never fired");
        assert!(a.send_stats().corrupt_rejected() > 0);
        assert!(a.send_stats().retransmissions() > 0);
    }

    #[test]
    fn duplicates_and_reordering_are_masked() {
        let fault = FaultConfig {
            seed: 13,
            duplicate_prob: 0.15,
            reorder_prob: 0.15,
            reorder_depth: 4,
            ..FaultConfig::none()
        };
        let (a, _b) = assert_reliable_delivery(fault, 200);
        assert!(a.send_stats().faults_duplicated() > 0, "dup plan never fired");
        assert!(a.send_stats().faults_reordered() > 0, "reorder plan never fired");
        assert!(a.send_stats().duplicates_dropped() > 0);
    }

    #[test]
    fn combined_faults_still_deliver_everything() {
        let (a, _b) = assert_reliable_delivery(FaultConfig::lossy(99), 300);
        assert!(a.send_stats().faults_dropped() > 0);
    }

    #[test]
    fn stalled_link_fires_timeout_at_the_deadline() {
        // The link blacks out immediately for 10 s; a 50 ms recv deadline
        // must fire as a Timeout at ~50 ms, not hang until the stall ends.
        let fault = FaultConfig {
            stall: Some(StallWindow { after: Duration::ZERO, duration: Duration::from_secs(10) }),
            ..FaultConfig::none()
        };
        let (a, b) = duplex_faulty(
            WanConfig::instant(),
            fault,
            FaultConfig::none(),
            ReliabilityConfig::default(),
        );
        a.send(0, Bytes::from_static(b"stuck"));
        let t0 = Instant::now();
        assert_eq!(b.recv_timeout(Duration::from_millis(50)), Err(RecvError::Timeout));
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(50), "fired early: {dt:?}");
        assert!(dt < Duration::from_secs(5), "hung past the deadline: {dt:?}");
    }

    #[test]
    fn stall_window_delays_then_delivers() {
        let fault = FaultConfig {
            stall: Some(StallWindow { after: Duration::ZERO, duration: Duration::from_millis(80) }),
            ..FaultConfig::none()
        };
        let (a, b) = duplex_faulty(
            WanConfig::instant(),
            fault,
            FaultConfig::none(),
            ReliabilityConfig::default(),
        );
        let t0 = Instant::now();
        a.send(0, Bytes::from_static(b"delayed"));
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.payload.as_ref(), b"delayed");
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn scripted_disconnect_blackholes_forever() {
        let fault =
            FaultConfig { seed: 14, disconnect_after_frames: Some(2), ..FaultConfig::none() };
        let (a, b) = duplex_faulty(
            WanConfig::instant(),
            fault,
            FaultConfig::none(),
            ReliabilityConfig::aggressive(),
        );
        // The first messages get through (each costs one data frame).
        a.send(0, Bytes::from_static(b"one"));
        a.send(1, Bytes::from_static(b"two"));
        assert!(b.recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(b.recv_timeout(Duration::from_secs(5)).is_ok());
        // Everything after the cutoff is blackholed despite retransmission.
        a.send(2, Bytes::from_static(b"lost"));
        assert_eq!(b.recv_timeout(Duration::from_millis(300)), Err(RecvError::Timeout));
        assert!(a.send_stats().faults_dropped() > 0);
    }
}
