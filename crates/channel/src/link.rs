//! Simulated cross-party WAN links with effectively-once delivery.
//!
//! A [`duplex`] call returns two [`Endpoint`]s wired back-to-back through
//! two one-directional simulated links. Each direction has a pump thread
//! that models the gateway message queue:
//!
//! * messages serialize onto the wire FIFO at `bandwidth` bytes/sec (a
//!   sender never overtakes an earlier message),
//! * every message additionally experiences a propagation `latency`
//!   (messages pipeline: a second message does not wait for the first's
//!   latency, only for its serialization),
//! * duplicate envelopes (same or older sequence number) are suppressed at
//!   the receiver — Pulsar's effectively-once semantics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

/// WAN characteristics of one link direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanConfig {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way propagation latency.
    pub latency: Duration,
    /// Fixed framing overhead charged per message (headers, auth token).
    pub per_message_overhead_bytes: usize,
}

impl WanConfig {
    /// The paper's environment: 300 Mbps public bandwidth between the two
    /// data centers, with a nominal 10 ms one-way latency.
    pub fn paper_public_network() -> WanConfig {
        WanConfig {
            bandwidth_bytes_per_sec: 300.0e6 / 8.0,
            latency: Duration::from_millis(10),
            per_message_overhead_bytes: 64,
        }
    }

    /// An effectively-infinite link for tests (no sleeping).
    pub fn instant() -> WanConfig {
        WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::ZERO,
            per_message_overhead_bytes: 0,
        }
    }

    /// Serialization time of a payload of `bytes` bytes.
    pub fn serialize_time(&self, bytes: usize) -> Duration {
        let total = (bytes + self.per_message_overhead_bytes) as f64;
        if self.bandwidth_bytes_per_sec.is_finite() && self.bandwidth_bytes_per_sec > 0.0 {
            Duration::from_secs_f64(total / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        }
    }
}

/// A routed message: a kind tag for dispatch, a sequence number for
/// effectively-once delivery, and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Message-kind tag (the protocol's discriminant).
    pub kind: u16,
    /// Monotone per-sender sequence number.
    pub seq: u64,
    /// Serialized message body.
    pub payload: Bytes,
}

/// Cumulative transfer statistics of one link direction.
#[derive(Debug, Default)]
pub struct LinkStats {
    /// Messages sent.
    pub messages: AtomicU64,
    /// Payload bytes sent (excluding framing overhead).
    pub bytes: AtomicU64,
    /// Duplicates suppressed at the receiver.
    pub duplicates_dropped: AtomicU64,
}

impl LinkStats {
    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes sent so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Duplicates dropped so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped.load(Ordering::Relaxed)
    }
}

/// Receive-side failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The peer endpoint was dropped and the queue is drained.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Disconnected => write!(f, "peer disconnected"),
            RecvError::Timeout => write!(f, "receive timed out"),
        }
    }
}

impl std::error::Error for RecvError {}

/// One end of a duplex cross-party link.
pub struct Endpoint {
    tx: Sender<Envelope>,
    rx: Receiver<(Instant, Envelope)>,
    next_seq: AtomicU64,
    last_delivered_seq: Mutex<Option<u64>>,
    send_stats: Arc<LinkStats>,
    recv_stats: Arc<LinkStats>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("sent", &self.send_stats.messages())
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Endpoint {
    /// Sends a message. Never blocks on the WAN simulation (the sender
    /// hands the message to the gateway queue and proceeds — this is what
    /// lets the blaster scheme overlap encryption with transfer).
    pub fn send(&self, kind: u16, payload: Bytes) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.send_stats.messages.fetch_add(1, Ordering::Relaxed);
        self.send_stats.bytes.fetch_add(payload.len() as u64, Ordering::Relaxed);
        // Ignore a disconnected peer: protocol teardown races are benign.
        let _ = self.tx.send(Envelope { kind, seq, payload });
    }

    /// Sends a pre-built envelope verbatim (test hook for duplicate
    /// injection; normal code uses [`Endpoint::send`]).
    pub fn send_envelope_raw(&self, env: Envelope) {
        self.send_stats.messages.fetch_add(1, Ordering::Relaxed);
        self.send_stats.bytes.fetch_add(env.payload.len() as u64, Ordering::Relaxed);
        let _ = self.tx.send(env);
    }

    /// Receives the next message, blocking until it has "arrived" per the
    /// WAN model. Duplicates are dropped transparently.
    pub fn recv(&self) -> Result<Envelope, RecvError> {
        loop {
            let (deliver_at, env) = self.rx.recv().map_err(|_| RecvError::Disconnected)?;
            sleep_until(deliver_at);
            if self.accept(&env) {
                return Ok(env);
            }
        }
    }

    /// Receives with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let (deliver_at, env) = self.rx.recv_timeout(remaining).map_err(|e| match e {
                RecvTimeoutError::Timeout => RecvError::Timeout,
                RecvTimeoutError::Disconnected => RecvError::Disconnected,
            })?;
            if deliver_at > deadline {
                // The message is in flight but will land after the caller's
                // deadline; honor the model and still deliver it late-free
                // next time. We cannot push back, so sleep and deliver.
                sleep_until(deliver_at);
            } else {
                sleep_until(deliver_at);
            }
            if self.accept(&env) {
                return Ok(env);
            }
        }
    }

    /// Non-blocking receive: returns a message only if one has fully
    /// arrived.
    pub fn try_recv(&self) -> Option<Envelope> {
        loop {
            let (deliver_at, env) = self.rx.try_recv().ok()?;
            if Instant::now() < deliver_at {
                sleep_until(deliver_at);
            }
            if self.accept(&env) {
                return Some(env);
            }
        }
    }

    fn accept(&self, env: &Envelope) -> bool {
        let mut last = self.last_delivered_seq.lock();
        match *last {
            Some(prev) if env.seq <= prev => {
                self.recv_stats.duplicates_dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
            _ => {
                *last = Some(env.seq);
                true
            }
        }
    }

    /// Statistics of the direction this endpoint sends on.
    pub fn send_stats(&self) -> &Arc<LinkStats> {
        &self.send_stats
    }

    /// Statistics of the direction this endpoint receives on.
    pub fn recv_stats(&self) -> &Arc<LinkStats> {
        &self.recv_stats
    }
}

fn sleep_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        thread::sleep(deadline - now);
    }
}

/// Creates a duplex link: two endpoints, each direction simulated with
/// `cfg`.
pub fn duplex(cfg: WanConfig) -> (Endpoint, Endpoint) {
    let (a, b_rx, ab_stats) = one_direction(cfg);
    let (b, a_rx, ba_stats) = one_direction(cfg);
    (
        Endpoint {
            tx: a,
            rx: a_rx,
            next_seq: AtomicU64::new(0),
            last_delivered_seq: Mutex::new(None),
            send_stats: ab_stats.clone(),
            recv_stats: ba_stats.clone(),
        },
        Endpoint {
            tx: b,
            rx: b_rx,
            next_seq: AtomicU64::new(0),
            last_delivered_seq: Mutex::new(None),
            send_stats: ba_stats,
            recv_stats: ab_stats,
        },
    )
}

/// Builds one simulated direction and spawns its pump thread.
fn one_direction(
    cfg: WanConfig,
) -> (Sender<Envelope>, Receiver<(Instant, Envelope)>, Arc<LinkStats>) {
    let (tx, pump_rx) = unbounded::<Envelope>();
    let (pump_tx, rx) = unbounded::<(Instant, Envelope)>();
    let stats = Arc::new(LinkStats::default());
    thread::Builder::new()
        .name("vf2-gateway-pump".into())
        .spawn(move || {
            // `wire_free_at` enforces FIFO serialization: each message
            // occupies the wire for its serialization time.
            let mut wire_free_at = Instant::now();
            while let Ok(env) = pump_rx.recv() {
                let now = Instant::now();
                let start = wire_free_at.max(now);
                let ser = cfg.serialize_time(env.payload.len());
                wire_free_at = start + ser;
                // Pace the pump so the sender-side queue drains at wire
                // speed (models gateway back-pressure without blocking the
                // send call itself).
                sleep_until(wire_free_at);
                let deliver_at = wire_free_at + cfg.latency;
                if pump_tx.send((deliver_at, env)).is_err() {
                    break;
                }
            }
        })
        .expect("spawn gateway pump thread");
    (tx, rx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_round_trip_in_order() {
        let (a, b) = duplex(WanConfig::instant());
        for i in 0..10u16 {
            a.send(i, Bytes::from(vec![i as u8; 4]));
        }
        for i in 0..10u16 {
            let env = b.recv().unwrap();
            assert_eq!(env.kind, i);
            assert_eq!(env.payload.as_ref(), &[i as u8; 4]);
        }
    }

    #[test]
    fn duplex_is_bidirectional() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(1, Bytes::from_static(b"ping"));
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"ping");
        b.send(2, Bytes::from_static(b"pong"));
        assert_eq!(a.recv().unwrap().payload.as_ref(), b"pong");
    }

    #[test]
    fn latency_delays_delivery() {
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::from_millis(30),
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from_static(b"x"));
        b.recv().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn bandwidth_serializes_large_messages() {
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: 1.0e6, // 1 MB/s
            latency: Duration::ZERO,
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from(vec![0u8; 50_000])); // 50 ms on the wire
        b.recv().unwrap();
        let dt = t0.elapsed();
        assert!(dt >= Duration::from_millis(45), "took {dt:?}");
    }

    #[test]
    fn messages_pipeline_through_latency() {
        // Two messages with high latency but instant serialization should
        // take ~1 latency total, not ~2 (they overlap in flight).
        let cfg = WanConfig {
            bandwidth_bytes_per_sec: f64::INFINITY,
            latency: Duration::from_millis(40),
            per_message_overhead_bytes: 0,
        };
        let (a, b) = duplex(cfg);
        let t0 = Instant::now();
        a.send(0, Bytes::from_static(b"1"));
        a.send(1, Bytes::from_static(b"2"));
        b.recv().unwrap();
        b.recv().unwrap();
        let dt = t0.elapsed();
        assert!(dt < Duration::from_millis(75), "messages should pipeline, took {dt:?}");
    }

    #[test]
    fn duplicates_are_suppressed() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(0, Bytes::from_static(b"first")); // seq 0
        a.send_envelope_raw(Envelope { kind: 0, seq: 0, payload: Bytes::from_static(b"dup") });
        a.send(1, Bytes::from_static(b"second")); // seq 1
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"first");
        assert_eq!(b.recv().unwrap().payload.as_ref(), b"second");
        assert_eq!(b.recv_stats().duplicates_dropped(), 0.max(b.recv_stats().duplicates_dropped()));
        assert!(b.recv_stats().duplicates_dropped() >= 1);
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let (a, b) = duplex(WanConfig::instant());
        a.send(0, Bytes::from(vec![0u8; 100]));
        a.send(0, Bytes::from(vec![0u8; 28]));
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(a.send_stats().messages(), 2);
        assert_eq!(a.send_stats().bytes(), 128);
        assert_eq!(b.recv_stats().bytes(), 128); // same direction object
    }

    #[test]
    fn disconnect_surfaces_as_error() {
        let (a, b) = duplex(WanConfig::instant());
        drop(a);
        // Give the pump a moment to observe the closed sender.
        assert_eq!(b.recv_timeout(Duration::from_millis(500)), Err(RecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_when_silent() {
        let (_a, b) = duplex(WanConfig::instant());
        let t0 = Instant::now();
        assert_eq!(b.recv_timeout(Duration::from_millis(30)), Err(RecvError::Timeout));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let (_a, b) = duplex(WanConfig::instant());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn paper_network_serialization_math() {
        let cfg = WanConfig::paper_public_network();
        // A 512-byte cipher + 64B overhead at 37.5 MB/s ≈ 15.4 µs.
        let t = cfg.serialize_time(512);
        assert!(t > Duration::from_micros(14) && t < Duration::from_micros(17), "{t:?}");
    }
}
