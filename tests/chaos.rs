//! Chaos tests: federated training on a hostile wire.
//!
//! The reliable-delivery sublayer in `vf2-channel` must mask every
//! injected fault short of a permanent disconnect — drops, duplicates,
//! reordering, bit corruption — so that training over a faulty WAN
//! produces a *bitwise-identical* model to the fault-free run. A peer
//! that genuinely dies must surface as `TrainError::PeerLost` within the
//! per-phase deadline: an error, never a panic, never a hang.

use std::time::{Duration, Instant};

use vf2boost::channel::{FaultConfig, WanConfig};
use vf2boost::core::config::CryptoConfig;
use vf2boost::core::error::{PartyId, TrainError};
use vf2boost::core::train_federated;
use vf2boost::core::TrainConfig;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::{split_vertical, VerticalScenario};
use vf2boost::gbdt::train::GbdtParams;

fn scenario(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4])
}

fn chaos_cfg() -> TrainConfig {
    TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        wan: WanConfig::instant(),
        ..TrainConfig::for_tests()
    }
}

/// A plan hostile enough that every fault class fires within a short run.
fn hostile(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_prob: 0.05,
        duplicate_prob: 0.03,
        reorder_prob: 0.05,
        reorder_depth: 3,
        corrupt_prob: 0.03,
        stall: None,
        disconnect_after_frames: None,
    }
}

#[test]
fn faulty_wan_trains_the_identical_model() {
    let s = scenario(61);
    let clean_cfg = chaos_cfg();
    let faulty_cfg = TrainConfig {
        fault_guest_to_host: hostile(0xC0FFEE),
        fault_host_to_guest: hostile(0xBEEF),
        ..clean_cfg
    };

    let clean = train_federated(&s.hosts, &s.guest, &clean_cfg).expect("clean run succeeds");
    let faulty = train_federated(&s.hosts, &s.guest, &faulty_cfg)
        .expect("reliable delivery must mask drops, duplicates, reordering and corruption");

    // Exactly-once in-order delivery per link direction means both runs
    // exchange the identical message sequence, so (with exact mock
    // crypto) the models must be bitwise-identical.
    let cm = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let fm = faulty.model.predict_margin(&[&s.hosts[0]], &s.guest);
    assert_eq!(cm.len(), fm.len());
    for (i, (a, b)) in cm.iter().zip(&fm).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "margin {i} diverged: {a} vs {b}");
    }

    // The wire really was hostile: faults fired and the sublayer worked
    // around them (clean runs report all-zero counters).
    let clean_events = clean.report.link_events();
    assert_eq!(clean_events.faults_injected, 0);
    assert_eq!(clean_events.retransmissions, 0);
    let events = faulty.report.link_events();
    assert!(events.faults_injected > 0, "no faults fired: {events:?}");
    assert!(events.retransmissions > 0, "drops must force retransmissions: {events:?}");
    assert!(events.acks_received > 0, "acks must flow: {events:?}");
}

#[test]
fn lossy_preset_on_both_directions_still_converges() {
    let s = scenario(62);
    let cfg = TrainConfig {
        fault_guest_to_host: FaultConfig::lossy(7),
        fault_host_to_guest: FaultConfig::lossy(8),
        ..chaos_cfg()
    };
    let out = train_federated(&s.hosts, &s.guest, &cfg).expect("lossy run succeeds");
    assert_eq!(out.model.trees.len(), cfg.gbdt.num_trees);
    for t in &out.model.trees {
        t.validate().expect("valid federated tree");
    }
}

#[test]
fn host_link_disconnect_yields_peer_lost_not_a_hang() {
    let s = scenario(63);
    // Kill the host→guest direction early: the guest keeps sending but
    // nothing (data or acks for the guest's view of host data) comes back.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            disconnect_after_frames: Some(6),
            ..FaultConfig::none()
        },
        peer_timeout: Duration::from_secs(2),
        ..chaos_cfg()
    };
    let t0 = Instant::now();
    let failure =
        train_federated(&s.hosts, &s.guest, &cfg).expect_err("a dead peer must abort the run");
    let elapsed = t0.elapsed();
    assert!(
        matches!(failure.error, TrainError::PeerLost { .. }),
        "expected PeerLost, got {}",
        failure.error
    );
    // One deadline for the blocked wait plus generous slack for the rest
    // of the run — far below a hang.
    assert!(elapsed < Duration::from_secs(20), "took {elapsed:?}");
    // The partial report still carries both parties' telemetry, including
    // the expired deadline.
    assert_eq!(failure.partial.hosts.len(), 1);
    assert!(failure.partial.link_events().recv_timeouts > 0);
}

#[test]
fn guest_link_disconnect_yields_peer_lost_at_the_host_too() {
    let s = scenario(64);
    // Kill the guest→host direction instead: the host starves while the
    // guest waits for histograms that were never requested successfully.
    let cfg = TrainConfig {
        fault_guest_to_host: FaultConfig {
            disconnect_after_frames: Some(6),
            ..FaultConfig::none()
        },
        peer_timeout: Duration::from_secs(2),
        ..chaos_cfg()
    };
    let t0 = Instant::now();
    let failure =
        train_federated(&s.hosts, &s.guest, &cfg).expect_err("a dead peer must abort the run");
    assert!(
        matches!(
            failure.error,
            TrainError::PeerLost { party: PartyId::Host(0) | PartyId::Guest, .. }
        ),
        "expected PeerLost, got {}",
        failure.error
    );
    assert!(t0.elapsed() < Duration::from_secs(20));
}
