//! The central correctness claim of the paper (§2.3): the vertical
//! federated GBDT algorithm is *lossless* — it produces the same model as
//! non-federated training on the co-located dataset, under every protocol
//! variant and under real cryptography.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::crypto::CryptoBackend;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::train::{GbdtParams, Trainer};

fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn dataset(rows: usize, seed: u64) -> vf2boost::gbdt::data::Dataset {
    generate_classification(&SyntheticConfig {
        rows,
        features: 10,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    })
}

/// Mock crypto, sequential protocol: must match centralized training.
#[test]
fn sequential_mock_is_lossless() {
    let data = dataset(500, 1);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::baseline(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-9, "mean |Δmargin| = {diff}");
}

/// Mock crypto, full optimistic protocol with rollback: still lossless —
/// dirty nodes must be repaired exactly.
#[test]
fn optimistic_mock_is_lossless() {
    let data = dataset(500, 2);
    let s = split_vertical(&data, &[5]);
    // Re-ordered accumulation changes f64 summation order, so it is kept
    // off here to make the check exact; the full stack is covered below.
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig {
            pack_histograms: false,
            reordered_accumulation: false,
            ..ProtocolConfig::vf2boost()
        },
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    assert!(fed.report.guest.events.dirty_nodes > 0, "the test must exercise rollback");
    // Optimistic must be *exactly* equivalent to the sequential protocol:
    // rollback changes scheduling, never decisions.
    let seq = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig { protocol: ProtocolConfig::baseline(), ..cfg },
    )
    .expect("training succeeds");
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &seq.model.predict_margin(&[&s.hosts[0]], &s.guest),
    );
    assert!(diff < 1e-12, "optimistic vs sequential mean |Δmargin| = {diff}");
    // Against centralized training, only tie-breaking between equal-gain
    // splits can differ (the parties enumerate features in a different
    // order than the co-located trainer).
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let cdiff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(cdiff < 1e-4, "vs centralized mean |Δmargin| = {cdiff}");
}

/// The complete mock VF²Boost stack (optimistic + blaster + re-ordered +
/// packing) tracks centralized training up to f64 summation-order noise.
#[test]
fn full_mock_vf2boost_is_lossless_within_summation_noise() {
    let data = dataset(500, 2);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::vf2boost(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-4, "mean |Δmargin| = {diff}");
}

/// Real Paillier with the full VF²Boost protocol (packing included): the
/// fixed-point encoding introduces ~B^-e noise but decisions must match on
/// separable data.
#[test]
fn full_vf2boost_paillier_is_lossless_within_encoding_noise() {
    let data = dataset(200, 3);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        protocol: ProtocolConfig::vf2boost(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-3, "mean |Δmargin| = {diff}");
}

/// The forward-path GH-pair packing matrix: with `gh_packing` on, every
/// protocol variant × histogram mode × bignum backend × subtraction
/// setting must produce *bitwise identical* final margins to the same
/// configuration with packing off. Split decisions drive the tree shape
/// and leaf weights are computed from guest-side plaintext sums, so any
/// decode discrepancy that flipped a split would blow the margins apart.
#[test]
fn gh_packing_matrix_preserves_split_decisions() {
    let data = dataset(160, 5);
    let s = split_vertical(&data, &[5]);
    #[derive(Clone, Copy)]
    enum HistMode {
        Raw,
        Reordered,
        Packed,
    }
    for optimistic in [false, true] {
        for hist in [HistMode::Raw, HistMode::Reordered, HistMode::Packed] {
            for backend in [CryptoBackend::NumBigint, CryptoBackend::Fixed] {
                for subtraction in [false, true] {
                    let protocol = ProtocolConfig {
                        optimistic,
                        blaster_batch: if optimistic { Some(64) } else { None },
                        reordered_accumulation: !matches!(hist, HistMode::Raw),
                        pack_histograms: matches!(hist, HistMode::Packed),
                        hist_subtraction: subtraction,
                        ..ProtocolConfig::vf2boost()
                    };
                    let base = TrainConfig {
                        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
                        crypto: CryptoConfig::Paillier { key_bits: 256 },
                        crypto_backend: backend,
                        protocol,
                        gh_packing: false,
                        ..TrainConfig::for_tests()
                    };
                    let off = train_federated(&s.hosts, &s.guest, &base)
                        .expect("gh-off training succeeds");
                    let on = train_federated(
                        &s.hosts,
                        &s.guest,
                        &TrainConfig { gh_packing: true, ..base },
                    )
                    .expect("gh-on training succeeds");
                    // The packed run must actually take the packed path.
                    let ghpack = on.report.guest.ops.ghpack
                        + on.report.hosts.iter().map(|h| h.ops.ghpack).sum::<u64>();
                    assert!(
                        ghpack > 0,
                        "gh run recorded no ghpack ops (opt={optimistic} sub={subtraction})"
                    );
                    let m_off = off.model.predict_margin(&[&s.hosts[0]], &s.guest);
                    let m_on = on.model.predict_margin(&[&s.hosts[0]], &s.guest);
                    assert_eq!(m_off.len(), m_on.len());
                    for (i, (a, b)) in m_off.iter().zip(&m_on).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "margin {i} diverged: off={a} on={b} \
                             (opt={optimistic} sub={subtraction})"
                        );
                    }
                }
            }
        }
    }
}

/// `gh_packing` on a mock suite is inert: the flag gates on a Paillier
/// suite, so the run degrades to the raw path and stays deterministic.
#[test]
fn gh_packing_flag_is_inert_under_mock_crypto() {
    let data = dataset(200, 6);
    let s = split_vertical(&data, &[5]);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::vf2boost(),
        gh_packing: false,
        ..TrainConfig::for_tests()
    };
    let off = train_federated(&s.hosts, &s.guest, &base).expect("training succeeds");
    let on = train_federated(&s.hosts, &s.guest, &TrainConfig { gh_packing: true, ..base })
        .expect("training succeeds");
    let m_off = off.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let m_on = on.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (a, b) in m_off.iter().zip(&m_on) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Losslessness holds on sparse data too (zero-bin reconstruction on both
/// the guest's plaintext path and the host's encrypted path).
#[test]
fn sparse_paillier_is_lossless_within_encoding_noise() {
    let data = generate_classification(&SyntheticConfig {
        rows: 250,
        features: 16,
        density: 0.25,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 4,
    });
    let s = split_vertical(&data, &[8]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-3, "mean |Δmargin| = {diff}");
}
