//! The central correctness claim of the paper (§2.3): the vertical
//! federated GBDT algorithm is *lossless* — it produces the same model as
//! non-federated training on the co-located dataset, under every protocol
//! variant and under real cryptography.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::train::{GbdtParams, Trainer};

fn mean_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

fn dataset(rows: usize, seed: u64) -> vf2boost::gbdt::data::Dataset {
    generate_classification(&SyntheticConfig {
        rows,
        features: 10,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    })
}

/// Mock crypto, sequential protocol: must match centralized training.
#[test]
fn sequential_mock_is_lossless() {
    let data = dataset(500, 1);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::baseline(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-9, "mean |Δmargin| = {diff}");
}

/// Mock crypto, full optimistic protocol with rollback: still lossless —
/// dirty nodes must be repaired exactly.
#[test]
fn optimistic_mock_is_lossless() {
    let data = dataset(500, 2);
    let s = split_vertical(&data, &[5]);
    // Re-ordered accumulation changes f64 summation order, so it is kept
    // off here to make the check exact; the full stack is covered below.
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig {
            pack_histograms: false,
            reordered_accumulation: false,
            ..ProtocolConfig::vf2boost()
        },
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    assert!(fed.report.guest.events.dirty_nodes > 0, "the test must exercise rollback");
    // Optimistic must be *exactly* equivalent to the sequential protocol:
    // rollback changes scheduling, never decisions.
    let seq = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig { protocol: ProtocolConfig::baseline(), ..cfg },
    )
    .expect("training succeeds");
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &seq.model.predict_margin(&[&s.hosts[0]], &s.guest),
    );
    assert!(diff < 1e-12, "optimistic vs sequential mean |Δmargin| = {diff}");
    // Against centralized training, only tie-breaking between equal-gain
    // splits can differ (the parties enumerate features in a different
    // order than the co-located trainer).
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let cdiff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(cdiff < 1e-4, "vs centralized mean |Δmargin| = {cdiff}");
}

/// The complete mock VF²Boost stack (optimistic + blaster + re-ordered +
/// packing) tracks centralized training up to f64 summation-order noise.
#[test]
fn full_mock_vf2boost_is_lossless_within_summation_noise() {
    let data = dataset(500, 2);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::vf2boost(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 3, max_layers: 5, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-4, "mean |Δmargin| = {diff}");
}

/// Real Paillier with the full VF²Boost protocol (packing included): the
/// fixed-point encoding introduces ~B^-e noise but decisions must match on
/// separable data.
#[test]
fn full_vf2boost_paillier_is_lossless_within_encoding_noise() {
    let data = dataset(200, 3);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        protocol: ProtocolConfig::vf2boost(),
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-3, "mean |Δmargin| = {diff}");
}

/// Losslessness holds on sparse data too (zero-bin reconstruction on both
/// the guest's plaintext path and the host's encrypted path).
#[test]
fn sparse_paillier_is_lossless_within_encoding_noise() {
    let data = generate_classification(&SyntheticConfig {
        rows: 250,
        features: 16,
        density: 0.25,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 4,
    });
    let s = split_vertical(&data, &[8]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        ..TrainConfig::for_tests()
    };
    let fed = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let central =
        Trainer::new(GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() }).fit(&data);
    let diff = mean_abs_diff(
        &fed.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &central.predict_margin(&data),
    );
    assert!(diff < 1e-3, "mean |Δmargin| = {diff}");
}
