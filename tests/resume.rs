//! Chaos tests for checkpoint/resume and liveness supervision.
//!
//! The core contract: killing a party mid-run and restarting the job
//! from its durable checkpoints must produce a model *bitwise identical*
//! to an uninterrupted run — in every protocol mode. And a peer that
//! silently dies must surface as a typed `PeerLost` within the liveness
//! deadline (never a hang), while a bounded outage shorter than the
//! deadline must be ridden out.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vf2boost::channel::{duplex, FaultConfig, StallWindow, WanConfig};
use vf2boost::core::config::{CryptoConfig, HostLossPolicy};
use vf2boost::core::error::{PartyId, TrainError};
use vf2boost::core::host::run_host;
use vf2boost::core::messages::Msg;
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::session::PartySession;
use vf2boost::core::wire;
use vf2boost::core::{train_federated, train_federated_session, SessionConfig, TrainConfig};
use vf2boost::crypto::encoding::EncodingConfig;
use vf2boost::crypto::suite::Suite;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::{split_vertical, VerticalScenario};
use vf2boost::gbdt::data::{Dataset, FeatureColumn};
use vf2boost::gbdt::train::GbdtParams;

fn scenario(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4])
}

fn resume_cfg(seed: u64, protocol: ProtocolConfig) -> TrainConfig {
    TrainConfig {
        gbdt: GbdtParams { num_trees: 4, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        wan: WanConfig::instant(),
        protocol,
        seed,
        ..TrainConfig::for_tests()
    }
}

/// Every protocol-mode combination the resume contract must hold for:
/// sequential/optimistic × raw/reordered/packed histograms.
fn modes() -> [(&'static str, ProtocolConfig); 6] {
    let seq = ProtocolConfig::baseline();
    let opt = ProtocolConfig {
        pack_histograms: false,
        reordered_accumulation: false,
        ..ProtocolConfig::vf2boost()
    };
    [
        ("seq-raw", seq),
        ("seq-reordered", ProtocolConfig { reordered_accumulation: true, ..seq }),
        ("seq-packed", ProtocolConfig { pack_histograms: true, ..seq }),
        ("opt-raw", opt),
        ("opt-reordered", ProtocolConfig { reordered_accumulation: true, ..opt }),
        (
            "opt-packed",
            ProtocolConfig { pack_histograms: true, reordered_accumulation: true, ..opt },
        ),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vf2_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill the host after 2 of 4 trees, restart the whole job from its
/// checkpoints, and demand the final model be bitwise identical to an
/// uninterrupted run — for every protocol-mode combination.
fn assert_resume_matrix(seed: u64) {
    let s = scenario(seed);
    for (name, protocol) in modes() {
        let cfg = resume_cfg(seed, protocol);

        // Reference: one uninterrupted, session-less run.
        let clean = train_federated(&s.hosts, &s.guest, &cfg)
            .unwrap_or_else(|f| panic!("[{name}] clean run failed: {}", f.error));
        let clean_margins = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);

        // Incarnation 1: the host is killed right after its second tree
        // checkpoint becomes durable.
        let dir = temp_dir(&format!("{seed}_{name}"));
        let session = SessionConfig::new(seed ^ 0x005e_5510, &dir);
        let crash_cfg = TrainConfig { crash_host_after_trees: Some(2), ..cfg };
        let failure = train_federated_session(&s.hosts, &s.guest, &crash_cfg, Some(&session))
            .expect_err("the injected crash must abort incarnation 1");
        assert!(
            matches!(failure.error, TrainError::PartyPanicked { party: PartyId::Host(0), .. }),
            "[{name}] expected the injected host crash, got {}",
            failure.error
        );
        // The panicked host's telemetry dies with its thread; the guest's
        // counters and the on-disk checkpoints testify for incarnation 1.
        assert!(
            failure.partial.guest.events.checkpoints_written >= 2,
            "[{name}] guest wrote {} checkpoints before the crash",
            failure.partial.guest.events.checkpoints_written
        );

        // Incarnation 2: same session, resume flag set, no crash. Both
        // parties must agree on tree 2 and finish the remaining trees.
        let resumed =
            train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session.clone().resuming()))
                .unwrap_or_else(|f| panic!("[{name}] resumed run failed: {}", f.error));
        assert!(
            resumed.report.guest.events.resumes >= 1,
            "[{name}] guest never resumed: {:?}",
            resumed.report.guest.events
        );
        assert!(
            resumed.report.hosts[0].events.resumes >= 1,
            "[{name}] host never resumed: {:?}",
            resumed.report.hosts[0].events
        );
        assert!(
            resumed.report.hosts[0].events.checkpoints_written >= 1,
            "[{name}] resumed host wrote no checkpoints: {:?}",
            resumed.report.hosts[0].events
        );

        let resumed_margins = resumed.model.predict_margin(&[&s.hosts[0]], &s.guest);
        assert_eq!(clean_margins.len(), resumed_margins.len());
        for (i, (a, b)) in clean_margins.iter().zip(&resumed_margins).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{name}] margin {i} diverged after resume: {a} vs {b}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_61() {
    assert_resume_matrix(61);
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_71() {
    assert_resume_matrix(71);
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_81() {
    assert_resume_matrix(81);
}

#[test]
fn silent_peer_death_is_a_typed_error_within_the_liveness_deadline() {
    let s = scenario(65);
    // The host→guest direction blackholes early while the per-phase
    // deadline is far away: only heartbeat supervision can notice.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            disconnect_after_frames: Some(6),
            ..FaultConfig::none()
        },
        peer_timeout: Duration::from_secs(30),
        peer_dead_after: Duration::from_millis(1500),
        heartbeat_interval: Duration::from_millis(200),
        ..resume_cfg(65, ProtocolConfig::vf2boost())
    };
    let t0 = Instant::now();
    let failure = train_federated(&s.hosts, &s.guest, &cfg)
        .expect_err("a silently dead peer must abort the run");
    let elapsed = t0.elapsed();
    assert!(
        matches!(failure.error, TrainError::PeerLost { .. }),
        "expected PeerLost, got {}",
        failure.error
    );
    // Far below the 30 s per-phase deadline: the liveness supervisor
    // fired, not the timeout of last resort.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
    let ev = failure.partial.guest.events;
    assert!(ev.heartbeats_sent > 0, "guest never beaconed: {ev:?}");
    assert!(ev.heartbeats_missed > 0, "silence was never observed: {ev:?}");
}

#[test]
fn outage_shorter_than_the_deadline_is_ridden_out() {
    let s = scenario(66);
    let base = resume_cfg(66, ProtocolConfig::vf2boost());
    // A 600 ms blackout from link creation: hellos and histograms are
    // held, then delivered. Shorter than the 2 s liveness deadline, so
    // the run must finish — with the identical model.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            stall: Some(StallWindow {
                after: Duration::ZERO,
                duration: Duration::from_millis(600),
            }),
            ..FaultConfig::none()
        },
        peer_dead_after: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(150),
        ..base
    };
    let clean = train_federated(&s.hosts, &s.guest, &base).expect("clean run succeeds");
    let stalled = train_federated(&s.hosts, &s.guest, &cfg)
        .expect("an outage shorter than the liveness deadline must be survived");
    let cm = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let sm = stalled.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (i, (a, b)) in cm.iter().zip(&sm).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "margin {i} diverged: {a} vs {b}");
    }
    // The guest noticed the silence (beacons went unanswered) but did
    // not overreact.
    let ev = stalled.report.guest.events;
    assert!(ev.heartbeats_sent > 0, "guest never beaconed: {ev:?}");
}

#[test]
fn a_session_id_mismatch_is_a_typed_resume_error() {
    let (guest_ep, host_ep) = duplex(WanConfig::instant());
    let data =
        Arc::new(Dataset::new(4, vec![FeatureColumn::Dense(vec![0.0, 1.0, 2.0, 3.0])], None));
    let cfg = TrainConfig { crypto: CryptoConfig::Mock, ..TrainConfig::for_tests() };
    let dir = temp_dir("sid_mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let sess = PartySession::host(&SessionConfig::new(7, &dir), &cfg, 0);
    let suite = Suite::plain(EncodingConfig::default());
    let handle = std::thread::spawn(move || run_host(0, data, cfg, suite, host_ep, Some(sess)));
    // Drain the host's SessionHello and FeatureMeta, then claim a
    // different session id in the Resume decision.
    let _ = guest_ep.recv().unwrap();
    let _ = guest_ep.recv().unwrap();
    let resume = Msg::Resume { session_id: 8, tree_count: 0 };
    guest_ep.send(resume.kind(), wire::encode(&resume).unwrap());
    let failure = handle.join().unwrap().expect_err("a foreign session id must be rejected");
    assert!(
        matches!(failure.error, TrainError::ResumeMismatch { party: PartyId::Guest, .. }),
        "expected ResumeMismatch, got {}",
        failure.error
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing failure-time flight-record dump must never mask the original
/// error — but it must not vanish either: the guest counts it in
/// `events.flight_record_failed` and leaves a trace note. A *directory*
/// squatting on the guest's flight path makes the dump fail (EISDIR bites
/// even a root test runner, unlike permission bits) while checkpoints and
/// the rest of the session stay healthy; an injected host crash supplies
/// the error path.
#[test]
fn a_failing_flight_record_dump_is_counted_not_fatal() {
    let s = scenario(11);
    let cfg = TrainConfig {
        crash_host_after_trees: Some(2),
        ..resume_cfg(11, ProtocolConfig::baseline())
    };
    let dir = temp_dir("flight_fail");
    std::fs::create_dir_all(dir.join("guest.flight.json")).unwrap();
    let session = SessionConfig::new(0xf11e, &dir);
    let failure = train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session))
        .expect_err("the injected host crash must abort the run");
    assert!(
        matches!(failure.error, TrainError::PartyPanicked { party: PartyId::Host(0), .. }),
        "expected the injected host crash, got {}",
        failure.error
    );
    assert_eq!(
        failure.partial.guest.events.flight_record_failed, 1,
        "the failed flight-record dump must be counted: {:?}",
        failure.partial.guest.events
    );
    // The squatting directory is still a directory: nothing overwrote it.
    assert!(dir.join("guest.flight.json").is_dir());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Dropout chaos: in-run host failure survival (rejoin / degrade / backoff).
//
// These kill a host *inside* the node loop — after it accepted a
// `NodeTask` but before its histogram answer, the worst spot for the
// guest, which now holds a half-built tree — and demand the run survive
// under the configured `on_host_loss` policy instead of restarting the
// whole job.
// ---------------------------------------------------------------------------

/// A two-host vertical split of the same synthetic data, so chaos runs
/// have a live survivor whose stream must be rewound and drained while
/// host 0 is down.
fn scenario2(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4, 2])
}

/// Kill the host mid-node-loop of tree 2 under `AwaitRejoin`: the guest
/// must quarantine the stream, keep the session open, accept the
/// restarted incarnation's newer-epoch hello, rewind to the last
/// mutually durable tree, and finish with a model bitwise identical to
/// an uninterrupted run — for sequential/optimistic × raw/packed.
fn assert_rejoin_matrix(seed: u64) {
    let s = scenario(seed);
    let all = modes();
    for (name, protocol) in [all[0], all[2], all[3], all[5]] {
        let cfg = resume_cfg(seed, protocol);

        // Reference: one uninterrupted, session-less run.
        let clean = train_federated(&s.hosts, &s.guest, &cfg)
            .unwrap_or_else(|f| panic!("[{name}] clean run failed: {}", f.error));
        let clean_margins = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);

        // Chaos: the host dies inside tree 2's node loop; the guest holds
        // the session open and a fresh incarnation rejoins mid-run.
        let dir = temp_dir(&format!("rejoin_{seed}_{name}"));
        let session = SessionConfig::new(seed ^ 0x0d10_0ca0, &dir);
        let chaos_cfg = TrainConfig {
            crash_host_on_node_task: Some((2, 0)),
            on_host_loss: HostLossPolicy::AwaitRejoin { deadline: Duration::from_secs(10) },
            ..cfg
        };
        let out = train_federated_session(&s.hosts, &s.guest, &chaos_cfg, Some(&session))
            .unwrap_or_else(|f| panic!("[{name}] rejoin run failed: {}", f.error));

        let ev = &out.report.guest.events;
        assert!(ev.quarantines >= 1, "[{name}] host loss was never quarantined: {ev:?}");
        assert!(ev.rejoins >= 1, "[{name}] the restarted host never rejoined: {ev:?}");
        assert!(
            out.report.hosts[0].events.resumes >= 1,
            "[{name}] the rejoined incarnation never resumed from its checkpoint: {:?}",
            out.report.hosts[0].events
        );
        // No party was parked: every tree was trained by the full roster.
        for rec in &out.report.tree_records {
            assert_eq!(
                rec.party_set,
                vec![0, 1],
                "[{name}] tree {} lost a party despite the successful rejoin",
                rec.tree
            );
        }

        let chaos_margins = out.model.predict_margin(&[&s.hosts[0]], &s.guest);
        assert_eq!(clean_margins.len(), chaos_margins.len());
        for (i, (a, b)) in clean_margins.iter().zip(&chaos_margins).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{name}] margin {i} diverged after the in-run rejoin: {a} vs {b}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn dropout_chaos_rejoin_matches_bitwise_seed_91() {
    assert_rejoin_matrix(91);
}

#[test]
fn dropout_chaos_rejoin_matches_bitwise_seed_92() {
    assert_rejoin_matrix(92);
}

#[test]
fn dropout_chaos_rejoin_matches_bitwise_seed_93() {
    assert_rejoin_matrix(93);
}

/// The rejoin barrier with a live survivor: host 0 dies mid-node-loop
/// while host 1 is healthy. The guest must rewind the *survivor* too —
/// `Rewind` → drain to `RewindAck` — so no aborted-attempt histogram
/// from host 1 can leak into the re-executed tree, and the final model
/// must still be bitwise identical to an uninterrupted two-host run.
#[test]
fn dropout_chaos_rejoin_with_a_live_survivor_rewinds_both() {
    let s = scenario2(94);
    for (name, protocol) in
        [("seq", ProtocolConfig::baseline()), ("opt", ProtocolConfig::vf2boost())]
    {
        let cfg = resume_cfg(94, protocol);
        let clean = train_federated(&s.hosts, &s.guest, &cfg)
            .unwrap_or_else(|f| panic!("[{name}] clean run failed: {}", f.error));
        let clean_margins = clean.model.predict_margin(&[&s.hosts[0], &s.hosts[1]], &s.guest);

        let dir = temp_dir(&format!("rejoin2_{name}"));
        let session = SessionConfig::new(0x51d2_0094, &dir);
        let chaos_cfg = TrainConfig {
            crash_host_on_node_task: Some((2, 0)),
            on_host_loss: HostLossPolicy::AwaitRejoin { deadline: Duration::from_secs(10) },
            ..cfg
        };
        let out = train_federated_session(&s.hosts, &s.guest, &chaos_cfg, Some(&session))
            .unwrap_or_else(|f| panic!("[{name}] two-host rejoin run failed: {}", f.error));
        let ev = &out.report.guest.events;
        assert!(ev.rejoins >= 1, "[{name}] the restarted host never rejoined: {ev:?}");
        for rec in &out.report.tree_records {
            assert_eq!(rec.party_set, vec![0, 1, 2], "[{name}] tree {} lost a party", rec.tree);
        }

        let chaos_margins = out.model.predict_margin(&[&s.hosts[0], &s.hosts[1]], &s.guest);
        for (i, (a, b)) in clean_margins.iter().zip(&chaos_margins).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{name}] margin {i} diverged after the survivor rewind: {a} vs {b}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `Degrade` with a single host: parking it leaves only the guest, which
/// must finish the remaining trees on its own features. The per-tree
/// `party_set` records the roster shrink, and the model stays servable
/// (missing host splits route to a neutral 0.0 contribution).
#[test]
fn dropout_chaos_degrade_parks_the_only_host_and_finishes_guest_only() {
    let s = scenario(95);
    let cfg = TrainConfig {
        crash_host_on_node_task: Some((2, 0)),
        on_host_loss: HostLossPolicy::Degrade,
        ..resume_cfg(95, ProtocolConfig::vf2boost())
    };
    let out = train_federated(&s.hosts, &s.guest, &cfg)
        .expect("a degrade run must survive losing its only host");
    let ev = &out.report.guest.events;
    assert_eq!(ev.quarantines, 1, "exactly one park expected: {ev:?}");
    assert_eq!(ev.rejoins, 0, "degrade must never rejoin: {ev:?}");
    assert_eq!(out.report.tree_records.len(), 4, "all four trees must complete");
    for rec in &out.report.tree_records {
        let expect = if rec.tree < 2 { vec![0, 1] } else { vec![0] };
        assert_eq!(
            rec.party_set, expect,
            "tree {} has the wrong training roster after the park",
            rec.tree
        );
    }
    // Session-less, so the dead host's split table is gone: prediction
    // must degrade gracefully, never panic.
    for (i, m) in out.model.predict_margin(&[&s.hosts[0]], &s.guest).iter().enumerate() {
        assert!(m.is_finite(), "margin {i} is not finite: {m}");
    }
}

/// `Degrade` with a survivor: host 0 is parked mid-run, host 1 keeps
/// training. The survivor's stream is rewound through the ack barrier,
/// the roster shrinks to {guest, host 1}, and the parked host's split
/// table is recovered from its last durable checkpoint so the first two
/// trees still route through its features at prediction time.
#[test]
fn dropout_chaos_degrade_with_a_survivor_keeps_the_live_host() {
    let s = scenario2(96);
    let dir = temp_dir("degrade2");
    let session = SessionConfig::new(0xde60_0096, &dir);
    let cfg = TrainConfig {
        crash_host_on_node_task: Some((2, 0)),
        on_host_loss: HostLossPolicy::Degrade,
        ..resume_cfg(96, ProtocolConfig::vf2boost())
    };
    let out = train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session))
        .expect("a degrade run must survive losing one of two hosts");
    let ev = &out.report.guest.events;
    assert_eq!(ev.quarantines, 1, "exactly one park expected: {ev:?}");
    assert_eq!(out.report.tree_records.len(), 4, "all four trees must complete");
    for rec in &out.report.tree_records {
        let expect = if rec.tree < 2 { vec![0, 1, 2] } else { vec![0, 2] };
        assert_eq!(
            rec.party_set, expect,
            "tree {} has the wrong training roster after the park",
            rec.tree
        );
    }
    for (i, m) in out.model.predict_margin(&[&s.hosts[0], &s.hosts[1]], &s.guest).iter().enumerate()
    {
        assert!(m.is_finite(), "margin {i} is not finite: {m}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stalled-but-alive link must be ridden out by the transfer-level
/// retry/backoff layer — counted as retries, never escalated to a
/// quarantine — even with a loss policy armed, and the model must be
/// bitwise identical to an unstalled run.
#[test]
fn dropout_chaos_slow_link_is_ridden_out_without_quarantine() {
    let s = scenario(97);
    let base = resume_cfg(97, ProtocolConfig::vf2boost());
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            stall: Some(StallWindow {
                after: Duration::ZERO,
                duration: Duration::from_millis(600),
            }),
            ..FaultConfig::none()
        },
        peer_dead_after: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(150),
        on_host_loss: HostLossPolicy::AwaitRejoin { deadline: Duration::from_secs(10) },
        ..base
    };
    let clean = train_federated(&s.hosts, &s.guest, &base).expect("clean run succeeds");
    let stalled = train_federated(&s.hosts, &s.guest, &cfg)
        .expect("a stall shorter than the liveness deadline must be ridden out");
    let ev = &stalled.report.guest.events;
    assert!(ev.transfer_retries > 0, "the stall never hit the retry layer: {ev:?}");
    assert_eq!(ev.quarantines, 0, "a slow link must not be quarantined: {ev:?}");
    let cm = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let sm = stalled.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (i, (a, b)) in cm.iter().zip(&sm).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "margin {i} diverged: {a} vs {b}");
    }
}
