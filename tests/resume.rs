//! Chaos tests for checkpoint/resume and liveness supervision.
//!
//! The core contract: killing a party mid-run and restarting the job
//! from its durable checkpoints must produce a model *bitwise identical*
//! to an uninterrupted run — in every protocol mode. And a peer that
//! silently dies must surface as a typed `PeerLost` within the liveness
//! deadline (never a hang), while a bounded outage shorter than the
//! deadline must be ridden out.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vf2boost::channel::{duplex, FaultConfig, StallWindow, WanConfig};
use vf2boost::core::config::CryptoConfig;
use vf2boost::core::error::{PartyId, TrainError};
use vf2boost::core::host::run_host;
use vf2boost::core::messages::Msg;
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::session::PartySession;
use vf2boost::core::wire;
use vf2boost::core::{train_federated, train_federated_session, SessionConfig, TrainConfig};
use vf2boost::crypto::encoding::EncodingConfig;
use vf2boost::crypto::suite::Suite;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::{split_vertical, VerticalScenario};
use vf2boost::gbdt::data::{Dataset, FeatureColumn};
use vf2boost::gbdt::train::GbdtParams;

fn scenario(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4])
}

fn resume_cfg(seed: u64, protocol: ProtocolConfig) -> TrainConfig {
    TrainConfig {
        gbdt: GbdtParams { num_trees: 4, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        wan: WanConfig::instant(),
        protocol,
        seed,
        ..TrainConfig::for_tests()
    }
}

/// Every protocol-mode combination the resume contract must hold for:
/// sequential/optimistic × raw/reordered/packed histograms.
fn modes() -> [(&'static str, ProtocolConfig); 6] {
    let seq = ProtocolConfig::baseline();
    let opt = ProtocolConfig {
        pack_histograms: false,
        reordered_accumulation: false,
        ..ProtocolConfig::vf2boost()
    };
    [
        ("seq-raw", seq),
        ("seq-reordered", ProtocolConfig { reordered_accumulation: true, ..seq }),
        ("seq-packed", ProtocolConfig { pack_histograms: true, ..seq }),
        ("opt-raw", opt),
        ("opt-reordered", ProtocolConfig { reordered_accumulation: true, ..opt }),
        (
            "opt-packed",
            ProtocolConfig { pack_histograms: true, reordered_accumulation: true, ..opt },
        ),
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vf2_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill the host after 2 of 4 trees, restart the whole job from its
/// checkpoints, and demand the final model be bitwise identical to an
/// uninterrupted run — for every protocol-mode combination.
fn assert_resume_matrix(seed: u64) {
    let s = scenario(seed);
    for (name, protocol) in modes() {
        let cfg = resume_cfg(seed, protocol);

        // Reference: one uninterrupted, session-less run.
        let clean = train_federated(&s.hosts, &s.guest, &cfg)
            .unwrap_or_else(|f| panic!("[{name}] clean run failed: {}", f.error));
        let clean_margins = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);

        // Incarnation 1: the host is killed right after its second tree
        // checkpoint becomes durable.
        let dir = temp_dir(&format!("{seed}_{name}"));
        let session = SessionConfig::new(seed ^ 0x005e_5510, &dir);
        let crash_cfg = TrainConfig { crash_host_after_trees: Some(2), ..cfg };
        let failure = train_federated_session(&s.hosts, &s.guest, &crash_cfg, Some(&session))
            .expect_err("the injected crash must abort incarnation 1");
        assert!(
            matches!(failure.error, TrainError::PartyPanicked { party: PartyId::Host(0), .. }),
            "[{name}] expected the injected host crash, got {}",
            failure.error
        );
        // The panicked host's telemetry dies with its thread; the guest's
        // counters and the on-disk checkpoints testify for incarnation 1.
        assert!(
            failure.partial.guest.events.checkpoints_written >= 2,
            "[{name}] guest wrote {} checkpoints before the crash",
            failure.partial.guest.events.checkpoints_written
        );

        // Incarnation 2: same session, resume flag set, no crash. Both
        // parties must agree on tree 2 and finish the remaining trees.
        let resumed =
            train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session.clone().resuming()))
                .unwrap_or_else(|f| panic!("[{name}] resumed run failed: {}", f.error));
        assert!(
            resumed.report.guest.events.resumes >= 1,
            "[{name}] guest never resumed: {:?}",
            resumed.report.guest.events
        );
        assert!(
            resumed.report.hosts[0].events.resumes >= 1,
            "[{name}] host never resumed: {:?}",
            resumed.report.hosts[0].events
        );
        assert!(
            resumed.report.hosts[0].events.checkpoints_written >= 1,
            "[{name}] resumed host wrote no checkpoints: {:?}",
            resumed.report.hosts[0].events
        );

        let resumed_margins = resumed.model.predict_margin(&[&s.hosts[0]], &s.guest);
        assert_eq!(clean_margins.len(), resumed_margins.len());
        for (i, (a, b)) in clean_margins.iter().zip(&resumed_margins).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "[{name}] margin {i} diverged after resume: {a} vs {b}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_61() {
    assert_resume_matrix(61);
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_71() {
    assert_resume_matrix(71);
}

#[test]
fn killed_and_resumed_run_matches_bitwise_seed_81() {
    assert_resume_matrix(81);
}

#[test]
fn silent_peer_death_is_a_typed_error_within_the_liveness_deadline() {
    let s = scenario(65);
    // The host→guest direction blackholes early while the per-phase
    // deadline is far away: only heartbeat supervision can notice.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            disconnect_after_frames: Some(6),
            ..FaultConfig::none()
        },
        peer_timeout: Duration::from_secs(30),
        peer_dead_after: Duration::from_millis(1500),
        heartbeat_interval: Duration::from_millis(200),
        ..resume_cfg(65, ProtocolConfig::vf2boost())
    };
    let t0 = Instant::now();
    let failure = train_federated(&s.hosts, &s.guest, &cfg)
        .expect_err("a silently dead peer must abort the run");
    let elapsed = t0.elapsed();
    assert!(
        matches!(failure.error, TrainError::PeerLost { .. }),
        "expected PeerLost, got {}",
        failure.error
    );
    // Far below the 30 s per-phase deadline: the liveness supervisor
    // fired, not the timeout of last resort.
    assert!(elapsed < Duration::from_secs(10), "took {elapsed:?}");
    let ev = failure.partial.guest.events;
    assert!(ev.heartbeats_sent > 0, "guest never beaconed: {ev:?}");
    assert!(ev.heartbeats_missed > 0, "silence was never observed: {ev:?}");
}

#[test]
fn outage_shorter_than_the_deadline_is_ridden_out() {
    let s = scenario(66);
    let base = resume_cfg(66, ProtocolConfig::vf2boost());
    // A 600 ms blackout from link creation: hellos and histograms are
    // held, then delivered. Shorter than the 2 s liveness deadline, so
    // the run must finish — with the identical model.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            stall: Some(StallWindow {
                after: Duration::ZERO,
                duration: Duration::from_millis(600),
            }),
            ..FaultConfig::none()
        },
        peer_dead_after: Duration::from_secs(2),
        heartbeat_interval: Duration::from_millis(150),
        ..base
    };
    let clean = train_federated(&s.hosts, &s.guest, &base).expect("clean run succeeds");
    let stalled = train_federated(&s.hosts, &s.guest, &cfg)
        .expect("an outage shorter than the liveness deadline must be survived");
    let cm = clean.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let sm = stalled.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (i, (a, b)) in cm.iter().zip(&sm).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "margin {i} diverged: {a} vs {b}");
    }
    // The guest noticed the silence (beacons went unanswered) but did
    // not overreact.
    let ev = stalled.report.guest.events;
    assert!(ev.heartbeats_sent > 0, "guest never beaconed: {ev:?}");
}

#[test]
fn a_session_id_mismatch_is_a_typed_resume_error() {
    let (guest_ep, host_ep) = duplex(WanConfig::instant());
    let data =
        Arc::new(Dataset::new(4, vec![FeatureColumn::Dense(vec![0.0, 1.0, 2.0, 3.0])], None));
    let cfg = TrainConfig { crypto: CryptoConfig::Mock, ..TrainConfig::for_tests() };
    let dir = temp_dir("sid_mismatch");
    std::fs::create_dir_all(&dir).unwrap();
    let sess = PartySession::host(&SessionConfig::new(7, &dir), &cfg, 0);
    let suite = Suite::plain(EncodingConfig::default());
    let handle = std::thread::spawn(move || run_host(0, data, cfg, suite, host_ep, Some(sess)));
    // Drain the host's SessionHello and FeatureMeta, then claim a
    // different session id in the Resume decision.
    let _ = guest_ep.recv().unwrap();
    let _ = guest_ep.recv().unwrap();
    let resume = Msg::Resume { session_id: 8, tree_count: 0 };
    guest_ep.send(resume.kind(), wire::encode(&resume).unwrap());
    let failure = handle.join().unwrap().expect_err("a foreign session id must be rejected");
    assert!(
        matches!(failure.error, TrainError::ResumeMismatch { party: PartyId::Guest, .. }),
        "expected ResumeMismatch, got {}",
        failure.error
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A failing failure-time flight-record dump must never mask the original
/// error — but it must not vanish either: the guest counts it in
/// `events.flight_record_failed` and leaves a trace note. A *directory*
/// squatting on the guest's flight path makes the dump fail (EISDIR bites
/// even a root test runner, unlike permission bits) while checkpoints and
/// the rest of the session stay healthy; an injected host crash supplies
/// the error path.
#[test]
fn a_failing_flight_record_dump_is_counted_not_fatal() {
    let s = scenario(11);
    let cfg = TrainConfig {
        crash_host_after_trees: Some(2),
        ..resume_cfg(11, ProtocolConfig::baseline())
    };
    let dir = temp_dir("flight_fail");
    std::fs::create_dir_all(dir.join("guest.flight.json")).unwrap();
    let session = SessionConfig::new(0xf11e, &dir);
    let failure = train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session))
        .expect_err("the injected host crash must abort the run");
    assert!(
        matches!(failure.error, TrainError::PartyPanicked { party: PartyId::Host(0), .. }),
        "expected the injected host crash, got {}",
        failure.error
    );
    assert_eq!(
        failure.partial.guest.events.flight_record_failed, 1,
        "the failed flight-record dump must be counted: {:?}",
        failure.partial.guest.events
    );
    // The squatting directory is still a directory: nothing overwrote it.
    assert!(dir.join("guest.flight.json").is_dir());
    let _ = std::fs::remove_dir_all(&dir);
}
