//! Crypto-backend equivalence: the fixed-limb Montgomery core and the
//! vendored num-bigint fallback must train **bitwise-identical** models.
//! The backend only changes how modular arithmetic is computed — never
//! what is computed — so every protocol mode must produce the same
//! ciphertexts, the same splits, and the same margins. The op counters
//! double as a fingerprint that the intended backend actually ran:
//! Montgomery multiplies are only counted on the fixed path.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::crypto::montgomery::CryptoBackend;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::train::GbdtParams;

fn dataset(rows: usize, seed: u64) -> vf2boost::gbdt::data::Dataset {
    generate_classification(&SyntheticConfig {
        rows,
        features: 10,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    })
}

fn assert_bitwise_equal(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: margin {i} differs: {x} vs {y}");
    }
}

/// Every protocol mode — sequential/optimistic × raw/reordered/packed —
/// trains the bit-identical model under the fixed-limb backend and the
/// num-bigint fallback, from the same seed.
#[test]
fn backends_train_bitwise_identical_models_across_all_modes() {
    let data = dataset(200, 31);
    let s = split_vertical(&data, &[5]);
    for optimistic in [false, true] {
        for (reordered, packed) in [(false, false), (true, false), (true, true)] {
            let cfg = TrainConfig {
                gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
                crypto: CryptoConfig::Paillier { key_bits: 256 },
                crypto_backend: CryptoBackend::Fixed,
                protocol: ProtocolConfig {
                    optimistic,
                    reordered_accumulation: reordered,
                    pack_histograms: packed,
                    ..ProtocolConfig::vf2boost()
                },
                ..TrainConfig::for_tests()
            };
            let context = format!("optimistic={optimistic} reordered={reordered} packed={packed}");
            let fixed = train_federated(&s.hosts, &s.guest, &cfg).expect("fixed backend trains");
            let nb = train_federated(
                &s.hosts,
                &s.guest,
                &TrainConfig { crypto_backend: CryptoBackend::NumBigint, ..cfg },
            )
            .expect("num-bigint backend trains");

            assert_bitwise_equal(
                &fixed.model.predict_margin(&[&s.hosts[0]], &s.guest),
                &nb.model.predict_margin(&[&s.hosts[0]], &s.guest),
                &context,
            );

            // Fingerprint: the fixed path counts Montgomery work, the
            // fallback never does — zero there is the honest value.
            assert!(
                fixed.report.guest.ops.modmul > 0,
                "{context}: fixed backend must count Montgomery multiplies"
            );
            assert!(
                fixed.report.guest.ops.redc > fixed.report.guest.ops.modmul,
                "{context}: REDC limb-passes must outnumber modmuls"
            );
            assert_eq!(
                nb.report.guest.ops.modmul, 0,
                "{context}: num-bigint backend must not count Montgomery work"
            );
            assert_eq!(nb.report.guest.ops.redc, 0, "{context}");

            // Telemetry names the backend that actually ran.
            assert!(
                fixed.report.guest.crypto_backend.starts_with("fixed-"),
                "{context}: guest label was {:?}",
                fixed.report.guest.crypto_backend
            );
            assert_eq!(nb.report.guest.crypto_backend, "num-bigint", "{context}");
            // Hosts share the guest's public key, so they inherit its
            // backend.
            assert!(
                fixed.report.hosts[0].crypto_backend.starts_with("fixed-"),
                "{context}: host label was {:?}",
                fixed.report.hosts[0].crypto_backend
            );
        }
    }
}

/// The mock suite ignores the backend knob entirely: flipping it is a
/// no-op and the telemetry says "plain".
#[test]
fn mock_suite_is_backend_agnostic() {
    let data = dataset(120, 32);
    let s = split_vertical(&data, &[5]);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 3, ..Default::default() },
        crypto: CryptoConfig::Mock,
        crypto_backend: CryptoBackend::NumBigint,
        ..TrainConfig::for_tests()
    };
    let out = train_federated(&s.hosts, &s.guest, &cfg).expect("mock trains");
    assert_eq!(out.report.guest.crypto_backend, "plain");
    assert_eq!(out.report.guest.ops.modmul, 0);
}
