//! Ciphertext histogram subtraction: the host derives each split's larger
//! child as `parent ⊖ smaller_child` (one negation + HAdd per occupied bin)
//! instead of re-walking its rows. These tests pin down the two claims that
//! make the optimization shippable: the trained model is **bitwise
//! identical** to the direct build in every protocol mode, and the host's
//! homomorphic-addition count actually drops by about the larger child's
//! row share.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::binning::BinningConfig;
use vf2boost::gbdt::train::GbdtParams;

fn dataset(rows: usize, seed: u64) -> vf2boost::gbdt::data::Dataset {
    generate_classification(&SyntheticConfig {
        rows,
        features: 10,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    })
}

fn assert_bitwise_equal(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: margin {i} differs: {x} vs {y}");
    }
}

/// Paillier, raw wire: subtraction on vs off trains bitwise-identical
/// models while the host's homomorphic additions drop by roughly the
/// larger children's row share, as witnessed by both the raw op counters
/// and the saved-adds telemetry.
///
/// Derivation costs one neg + one HAdd per occupied *bin slot* of the
/// sibling, so it pays off when nodes hold many more rows than
/// `bins × E` — the regime this dataset (600 rows, 8 bins) pins down.
/// With rows ≈ bins the direct build is already cheap and the scheduler
/// still derives (the decision is row-count-, not profit-driven), which
/// keeps the policy a pure function of the row lists.
#[test]
fn paillier_subtraction_halves_child_hadds_with_identical_trees() {
    let data = dataset(600, 11);
    let s = split_vertical(&data, &[5]);
    let base = TrainConfig {
        gbdt: GbdtParams {
            num_trees: 2,
            max_layers: 4,
            binning: BinningConfig { num_bins: 8, max_samples: 1 << 16 },
            ..Default::default()
        },
        crypto: CryptoConfig::Paillier { key_bits: 256 },
        protocol: ProtocolConfig {
            pack_histograms: false,
            hist_subtraction: true,
            ..ProtocolConfig::vf2boost()
        },
        ..TrainConfig::for_tests()
    };
    let on = train_federated(&s.hosts, &s.guest, &base).expect("training succeeds");
    let off = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig {
            protocol: ProtocolConfig { hist_subtraction: false, ..base.protocol },
            ..base
        },
    )
    .expect("training succeeds");

    assert_bitwise_equal(
        &on.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &off.model.predict_margin(&[&s.hosts[0]], &s.guest),
        "subtraction on vs off",
    );

    let on_host = &on.report.hosts[0];
    let off_host = &off.report.hosts[0];
    assert!(on_host.events.hist_subtractions > 0, "no sibling was ever derived");
    assert!(on_host.events.hist_cache_hits > 0, "the node cache was never hit");
    assert!(on_host.events.hadds_saved > 0, "derivation saved nothing");
    assert!(
        on_host.events.hist_cache_hit_rate() > 0.5,
        "hit rate {} too low for a clean (fault-free) run",
        on_host.events.hist_cache_hit_rate()
    );
    assert!(on_host.ops.negs > 0, "subtraction must spend negations");
    assert_eq!(off_host.ops.negs, 0, "direct build never negates");
    assert_eq!(off_host.events.hist_subtractions, 0);
    assert_eq!(off_host.events.hadds_saved, 0);

    // Depth ≥ 1 direct builds cost one HAdd per (row, feature) entry of
    // *both* children; derivation replaces the larger child's share with
    // per-bin work. Even with the (identical) root accumulation diluting
    // the ratio, the total must drop visibly, and the drop must be
    // consistent with what the telemetry claims was saved.
    let spent_on = on_host.ops.hadd + on_host.ops.negs;
    assert!(
        spent_on < off_host.ops.hadd,
        "subtraction run spent {spent_on} adds+negs vs {} direct adds",
        off_host.ops.hadd
    );
    let measured_drop = off_host.ops.hadd - on_host.ops.hadd;
    assert!(
        on_host.events.hadds_saved <= measured_drop + on_host.ops.scalings,
        "telemetry claims {} saved but the counters only dropped by {measured_drop}",
        on_host.events.hadds_saved
    );
    assert!(
        on_host.ops.hadd as f64 <= 0.9 * off_host.ops.hadd as f64,
        "expected ≥10% HAdd reduction, got {} vs {}",
        on_host.ops.hadd,
        off_host.ops.hadd
    );
}

/// Every protocol mode — sequential/optimistic × raw/reordered/packed —
/// trains the bit-identical model with subtraction on vs off, and actually
/// exercises the subtraction path.
#[test]
fn subtraction_is_bitwise_invisible_across_all_modes() {
    let data = dataset(200, 12);
    let s = split_vertical(&data, &[5]);
    for optimistic in [false, true] {
        for (reordered, packed) in [(false, false), (true, false), (true, true)] {
            let protocol = ProtocolConfig {
                optimistic,
                reordered_accumulation: reordered,
                pack_histograms: packed,
                hist_subtraction: true,
                ..ProtocolConfig::vf2boost()
            };
            let cfg = TrainConfig {
                gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
                crypto: CryptoConfig::Mock,
                protocol,
                ..TrainConfig::for_tests()
            };
            let context = format!("optimistic={optimistic} reordered={reordered} packed={packed}");
            let on = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
            let off = train_federated(
                &s.hosts,
                &s.guest,
                &TrainConfig {
                    protocol: ProtocolConfig { hist_subtraction: false, ..protocol },
                    ..cfg
                },
            )
            .expect("training succeeds");
            assert_bitwise_equal(
                &on.model.predict_margin(&[&s.hosts[0]], &s.guest),
                &off.model.predict_margin(&[&s.hosts[0]], &s.guest),
                &context,
            );
            assert!(
                on.report.hosts[0].events.hist_subtractions > 0,
                "{context}: subtraction path never taken"
            );
            assert_eq!(
                off.report.hosts[0].events.hist_subtractions, 0,
                "{context}: direct build must not derive"
            );
        }
    }
}

/// A tiny cache cap starves the subtraction path: the host falls back to
/// direct builds (counting misses), and the model is still bit-identical.
#[test]
fn tiny_cache_cap_falls_back_to_direct_builds() {
    let data = dataset(120, 13);
    let s = split_vertical(&data, &[5]);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig { hist_cache_bytes: 1, ..ProtocolConfig::vf2boost() },
        ..TrainConfig::for_tests()
    };
    let starved = train_federated(&s.hosts, &s.guest, &base).expect("training succeeds");
    let off = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig {
            protocol: ProtocolConfig { hist_subtraction: false, ..base.protocol },
            ..base
        },
    )
    .expect("training succeeds");
    assert_bitwise_equal(
        &starved.model.predict_margin(&[&s.hosts[0]], &s.guest),
        &off.model.predict_margin(&[&s.hosts[0]], &s.guest),
        "starved cache vs subtraction off",
    );
    let host = &starved.report.hosts[0];
    assert_eq!(host.events.hist_subtractions, 0, "a 1-byte cap cannot hold any parent");
    assert!(host.events.hist_cache_misses > 0, "starvation must surface as misses");
}
