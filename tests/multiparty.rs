//! Multi-party training (the paper's §6.4 / Table 6): two or more host
//! parties contribute feature slices to the guest's task. More parties ⇒
//! more features ⇒ higher AUC, at a modest protocol cost.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_even;
use vf2boost::gbdt::data::Dataset;
use vf2boost::gbdt::metrics::auc;
use vf2boost::gbdt::train::GbdtParams;

/// Slices the first `k × per_party` features (Table 6's fixed per-party
/// feature budget) and splits them evenly over `k` parties.
fn take_parties(
    data: &Dataset,
    k: usize,
    per_party: usize,
) -> vf2boost::datagen::vertical::VerticalScenario {
    let feats: Vec<usize> = (0..k * per_party).collect();
    split_even(&data.select_features(&feats, true), k)
}

#[test]
fn auc_improves_with_more_parties() {
    let data = generate_classification(&SyntheticConfig {
        rows: 1200,
        features: 48,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 60,
    });
    let (train, valid) = data.split_rows(900);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 4, max_layers: 5, ..Default::default() },
        crypto: CryptoConfig::Mock,
        ..TrainConfig::for_tests()
    };
    let mut last_auc = 0.0;
    for parties in [2usize, 3, 4] {
        let s = take_parties(&train, parties, 12);
        let v = take_parties(&valid, parties, 12);
        let out = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
        let host_refs: Vec<&Dataset> = v.hosts.iter().collect();
        let margins = out.model.predict_margin(&host_refs, &v.guest);
        let a = auc(v.guest.labels().unwrap(), &margins);
        assert!(
            a > last_auc - 0.02,
            "AUC should not degrade as parties join: {parties} parties gave {a} after {last_auc}"
        );
        last_auc = a;
        assert_eq!(out.report.hosts.len(), parties - 1);
        // Every host must actually contribute splits.
        for (h, telem) in out.report.hosts.iter().enumerate() {
            assert!(telem.events.splits_won > 0, "host {h} won no splits");
        }
    }
    assert!(last_auc > 0.68, "4-party AUC {last_auc}");
}

#[test]
fn four_party_paillier_smoke() {
    let data = generate_classification(&SyntheticConfig {
        rows: 120,
        features: 16,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 61,
    });
    let s = split_even(&data, 4);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 1, max_layers: 3, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 384 },
        ..TrainConfig::for_tests()
    };
    let out = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    assert_eq!(out.report.hosts.len(), 3);
    for t in &out.model.trees {
        t.validate().expect("valid tree");
    }
    // The guest encrypted the gradients once per host link.
    assert!(out.report.guest.ops.enc >= 120 * 2);
}
