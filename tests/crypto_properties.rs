//! Property-style tests over the cryptographic substrate, pinned at the
//! cross-crate level: random values flowing through encoding → encryption
//! → homomorphic arithmetic → packing → decryption must come back intact.
//!
//! Each property is exercised over a deterministic, seeded sweep of random
//! cases (the offline stand-in for a proptest strategy).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vf2boost::crypto::encoding::EncodingConfig;
use vf2boost::crypto::packing::PackingPlan;
use vf2boost::crypto::suite::{Ciphertext, Suite};

const CASES: usize = 32;

fn suite() -> Suite {
    // One key pair per test: keygen dominates otherwise.
    Suite::paillier_seeded(384, 4242, EncodingConfig { base: 16, base_exp: 8, jitter: 4 })
        .expect("keygen")
}

/// encrypt → decrypt round-trips any representable float.
#[test]
fn encrypt_decrypt_round_trip() {
    let s = suite();
    let mut gen = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let v = gen.gen_range(-1.0e6f64..1.0e6);
        let mut rng = StdRng::seed_from_u64(gen.gen());
        let c = s.encrypt(v, &mut rng).unwrap();
        let d = s.decrypt(&c).unwrap();
        // Precision floor is B^-base_exp = 16^-8 ≈ 2.3e-10, relative to
        // magnitude for large values.
        assert!((d - v).abs() <= 1e-9 * v.abs().max(1.0), "{v} -> {d}");
    }
}

/// Homomorphic addition equals plaintext addition for arbitrary
/// (jittered-exponent) operands.
#[test]
fn homomorphic_addition_is_exact() {
    let s = suite();
    let mut gen = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..CASES {
        let a = gen.gen_range(-1.0e3f64..1.0e3);
        let b = gen.gen_range(-1.0e3f64..1.0e3);
        let mut rng = StdRng::seed_from_u64(gen.gen());
        let ca = s.encrypt(a, &mut rng).unwrap();
        let cb = s.encrypt(b, &mut rng).unwrap();
        let sum = s.decrypt(&s.add(&ca, &cb).unwrap()).unwrap();
        assert!((sum - (a + b)).abs() < 1e-6, "{a}+{b} -> {sum}");
    }
}

/// Sums of many ciphers match plaintext sums regardless of exponent
/// mixing (the histogram-accumulation invariant).
#[test]
fn long_sums_are_exact() {
    let s = suite();
    let mut gen = StdRng::seed_from_u64(0xACC);
    for _ in 0..CASES {
        let len = gen.gen_range(1usize..40);
        let values: Vec<f64> = (0..len).map(|_| gen.gen_range(-10.0f64..10.0)).collect();
        let mut rng = StdRng::seed_from_u64(gen.gen());
        let mut acc: Option<Ciphertext> = None;
        for &v in &values {
            let c = s.encrypt(v, &mut rng).unwrap();
            acc = Some(match acc {
                None => c,
                Some(prev) => s.add(&prev, &c).unwrap(),
            });
        }
        let got = s.decrypt(&acc.unwrap()).unwrap();
        let want: f64 = values.iter().sum();
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }
}

/// Packing any in-range non-negative slot values round-trips through
/// a single decryption.
#[test]
fn packing_round_trips() {
    let s = suite();
    let mut gen = StdRng::seed_from_u64(0x9AC4);
    for _ in 0..CASES {
        let len = gen.gen_range(1usize..5);
        let values: Vec<f64> = (0..len).map(|_| gen.gen_range(0.0f64..1000.0)).collect();
        let mut rng = StdRng::seed_from_u64(gen.gen());
        let plan = PackingPlan::new(s.public_key().unwrap(), 64, 5).unwrap();
        let slots: Vec<Ciphertext> =
            values.iter().map(|&v| s.encrypt_at(v, 10, &mut rng).unwrap()).collect();
        let packed = s.pack(&slots, &plan).unwrap();
        let before = s.counters().snapshot();
        let out = s.unpack_decrypt(&packed).unwrap();
        assert_eq!(s.counters().snapshot().since(&before).dec, 1);
        for (got, want) in out.iter().zip(&values) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }
}

/// The mock suite is behaviourally identical for addition chains.
#[test]
fn mock_suite_matches_paillier_semantics() {
    let p = suite();
    let m = Suite::plain(EncodingConfig { base: 16, base_exp: 8, jitter: 4 });
    let mut gen = StdRng::seed_from_u64(0x110C);
    for _ in 0..CASES {
        let len = gen.gen_range(1usize..20);
        let values: Vec<f64> = (0..len).map(|_| gen.gen_range(-5.0f64..5.0)).collect();
        let seed: u64 = gen.gen();
        let mut rng_p = StdRng::seed_from_u64(seed);
        let mut rng_m = StdRng::seed_from_u64(seed);
        let mut acc_p: Option<Ciphertext> = None;
        let mut acc_m: Option<Ciphertext> = None;
        for &v in &values {
            let cp = p.encrypt(v, &mut rng_p).unwrap();
            let cm = m.encrypt(v, &mut rng_m).unwrap();
            acc_p = Some(match acc_p {
                None => cp,
                Some(x) => p.add(&x, &cp).unwrap(),
            });
            acc_m = Some(match acc_m {
                None => cm,
                Some(x) => m.add(&x, &cm).unwrap(),
            });
        }
        let dp = p.decrypt(&acc_p.unwrap()).unwrap();
        let dm = m.decrypt(&acc_m.unwrap()).unwrap();
        assert!((dp - dm).abs() < 1e-5, "{dp} vs {dm}");
    }
}
