//! Many-party chaos matrix for the event-driven scheduler: 8 hosts over
//! heterogeneous faulty WANs, trained under both schedulers in every
//! protocol mode, must produce bitwise-identical models.
//!
//! The pipelined scheduler reorders *work* (one host's decrypt overlaps
//! another's transfer; already-arrived histograms commit in batches) but
//! must never reorder *decisions*: per-node splits fire only once every
//! live host's answer is admitted, and the winner scan walks hosts in
//! index order. These tests drive that claim through rolling per-link
//! stalls, reordering links, a heterogeneous bandwidth/latency spread,
//! and a mid-run host kill-and-rejoin with phases overlapping.

use std::path::PathBuf;
use std::time::Duration;

use vf2boost::channel::{FaultConfig, StallWindow, WanConfig};
use vf2boost::core::config::{CryptoConfig, HostLossPolicy, Scheduler, WanSpread};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::{train_federated, train_federated_session, SessionConfig, TrainConfig};
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::{split_even, VerticalScenario};
use vf2boost::gbdt::data::Dataset;
use vf2boost::gbdt::train::GbdtParams;

const HOSTS: usize = 8;

fn scenario(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 240,
        features: 27,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_even(&data, HOSTS + 1)
}

/// Sequential/optimistic × raw/packed: the matrix the scheduler contract
/// is asserted over.
fn modes() -> [(&'static str, ProtocolConfig); 4] {
    let seq = ProtocolConfig::baseline();
    let opt = ProtocolConfig {
        pack_histograms: false,
        reordered_accumulation: false,
        ..ProtocolConfig::vf2boost()
    };
    [
        ("seq-raw", seq),
        ("seq-packed", ProtocolConfig { pack_histograms: true, ..seq }),
        ("opt-raw", opt),
        ("opt-packed", ProtocolConfig { pack_histograms: true, ..opt }),
    ]
}

/// A per-link plan with both fault classes the scheduler must ride out:
/// a timed blackout (staggered per host by `stall_stagger`, so outages
/// roll across the roster) and frame reordering.
fn rolling_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        reorder_prob: 0.05,
        reorder_depth: 3,
        stall: Some(StallWindow {
            after: Duration::from_millis(40),
            duration: Duration::from_millis(30),
        }),
        ..FaultConfig::none()
    }
}

/// Eight hosts behind a heterogeneous WAN: host 0 gets the base link,
/// host 7 a quarter of the bandwidth at four times the latency, with
/// rolling stalls and reordering on every link.
fn chaos_cfg(seed: u64, protocol: ProtocolConfig) -> TrainConfig {
    TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol,
        wan: WanConfig {
            bandwidth_bytes_per_sec: 50.0e6,
            latency: Duration::from_micros(500),
            per_message_overhead_bytes: 32,
        },
        wan_spread: Some(WanSpread { slowest_bandwidth_frac: 0.25, latency_mult: 4.0 }),
        fault_guest_to_host: rolling_faults(seed ^ 0xA11CE),
        fault_host_to_guest: rolling_faults(seed ^ 0xB0B),
        stall_stagger: Duration::from_millis(25),
        seed,
        ..TrainConfig::for_tests()
    }
}

fn margins(out: &vf2boost::core::TrainOutput, s: &VerticalScenario) -> Vec<f64> {
    let refs: Vec<&Dataset> = s.hosts.iter().collect();
    out.model.predict_margin(&refs, &s.guest)
}

fn assert_bitwise(name: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "[{name}] margin {i} diverged between schedulers: {x} vs {y}"
        );
    }
}

/// The tentpole contract: across sequential/optimistic × raw/packed, an
/// 8-host run on hostile heterogeneous links trains the identical model
/// under the lockstep and pipelined schedulers.
#[test]
fn eight_host_chaos_matrix_is_scheduler_invariant() {
    let s = scenario(71);
    for (name, protocol) in modes() {
        let lockstep_cfg = chaos_cfg(71, protocol);
        let pipelined_cfg =
            TrainConfig { scheduler: Scheduler::Pipelined, pipeline_depth: 4, ..lockstep_cfg };
        let lockstep = train_federated(&s.hosts, &s.guest, &lockstep_cfg)
            .unwrap_or_else(|f| panic!("[{name}] lockstep chaos run failed: {}", f.error));
        let pipelined = train_federated(&s.hosts, &s.guest, &pipelined_cfg)
            .unwrap_or_else(|f| panic!("[{name}] pipelined chaos run failed: {}", f.error));

        assert_eq!(lockstep.report.hosts.len(), HOSTS);
        assert_eq!(pipelined.report.hosts.len(), HOSTS);
        assert_bitwise(name, &margins(&lockstep, &s), &margins(&pipelined, &s));

        // The wire really was hostile in both runs.
        for out in [&lockstep, &pipelined] {
            let ev = out.report.link_events();
            assert!(ev.faults_injected > 0, "[{name}] no faults fired: {ev:?}");
        }
    }
}

/// A degenerate pipeline depth of 1 must behave like one-at-a-time event
/// handling, not deadlock or diverge.
#[test]
fn pipeline_depth_one_still_matches() {
    let s = scenario(72);
    let protocol = ProtocolConfig::vf2boost();
    let lockstep = train_federated(&s.hosts, &s.guest, &chaos_cfg(72, protocol))
        .unwrap_or_else(|f| panic!("lockstep run failed: {}", f.error));
    let shallow_cfg = TrainConfig {
        scheduler: Scheduler::Pipelined,
        pipeline_depth: 1,
        ..chaos_cfg(72, protocol)
    };
    let shallow = train_federated(&s.hosts, &s.guest, &shallow_cfg)
        .unwrap_or_else(|f| panic!("depth-1 pipelined run failed: {}", f.error));
    assert_bitwise("depth-1", &margins(&lockstep, &s), &margins(&shallow, &s));
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vf2_many_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Kill host 0 inside tree 1's node loop while the pipelined scheduler
/// has overlapping transfers in flight from seven live survivors: the
/// quarantine → rejoin → rewind barrier must hold exactly as it does
/// under lockstep, and the final model must be bitwise identical to an
/// uninterrupted run.
#[test]
fn pipelined_kill_and_rejoin_holds_the_rewind_barrier() {
    let s = scenario(73);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 3, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::vf2boost(),
        wan: WanConfig::instant(),
        scheduler: Scheduler::Pipelined,
        pipeline_depth: 4,
        seed: 73,
        ..TrainConfig::for_tests()
    };

    let clean = train_federated(&s.hosts, &s.guest, &base)
        .unwrap_or_else(|f| panic!("clean pipelined run failed: {}", f.error));
    let clean_margins = margins(&clean, &s);

    let dir = temp_dir("rejoin");
    let session = SessionConfig::new(0x0d10_0073, &dir);
    let chaos = TrainConfig {
        crash_host_on_node_task: Some((1, 0)),
        on_host_loss: HostLossPolicy::AwaitRejoin { deadline: Duration::from_secs(10) },
        ..base
    };
    let out = train_federated_session(&s.hosts, &s.guest, &chaos, Some(&session))
        .unwrap_or_else(|f| panic!("pipelined rejoin run failed: {}", f.error));

    let ev = &out.report.guest.events;
    assert!(ev.quarantines >= 1, "host loss was never quarantined: {ev:?}");
    assert!(ev.rejoins >= 1, "the restarted host never rejoined: {ev:?}");
    // No party was parked: every tree was trained by the full roster.
    for rec in &out.report.tree_records {
        assert_eq!(
            rec.party_set,
            (0..=HOSTS as u16).collect::<Vec<_>>(),
            "tree {} lost a party despite the successful rejoin",
            rec.tree
        );
    }
    assert_bitwise("rejoin", &clean_margins, &margins(&out, &s));
    let _ = std::fs::remove_dir_all(&dir);
}
