//! Behaviour under a constrained WAN and cross-party traffic accounting —
//! the properties behind the paper's resource-utilization findings (§6.2)
//! and the blaster/packing communication savings.

use std::time::Duration;

use vf2boost::channel::WanConfig;
use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::train::GbdtParams;

fn scenario(seed: u64) -> vf2boost::datagen::vertical::VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4])
}

/// Training over a slow link must still converge to the same model.
#[test]
fn constrained_wan_does_not_change_the_model() {
    let s = scenario(50);
    let fast = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 3, ..Default::default() },
        crypto: CryptoConfig::Mock,
        wan: WanConfig::instant(),
        ..TrainConfig::for_tests()
    };
    let slow = TrainConfig {
        wan: WanConfig {
            bandwidth_bytes_per_sec: 200_000.0,
            latency: Duration::from_millis(5),
            per_message_overhead_bytes: 64,
        },
        ..fast
    };
    let a = train_federated(&s.hosts, &s.guest, &fast).expect("training succeeds");
    let b = train_federated(&s.hosts, &s.guest, &slow).expect("training succeeds");
    let am = a.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let bm = b.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (x, y) in am.iter().zip(&bm) {
        assert!((x - y).abs() < 1e-12);
    }
    assert!(b.report.wall_time > a.report.wall_time, "the slow WAN must actually cost time");
}

/// Blaster batching multiplies message count but not byte volume.
#[test]
fn blaster_batches_split_messages_not_bytes() {
    let s = scenario(51);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 1, max_layers: 3, ..Default::default() },
        crypto: CryptoConfig::Mock,
        protocol: ProtocolConfig::baseline(),
        ..TrainConfig::for_tests()
    };
    let bulk = train_federated(&s.hosts, &s.guest, &base).expect("training succeeds");
    let blaster = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig {
            protocol: ProtocolConfig { blaster_batch: Some(32), ..ProtocolConfig::baseline() },
            ..base
        },
    )
    .expect("training succeeds");
    assert!(
        blaster.report.guest.messages_sent > bulk.report.guest.messages_sent + 4,
        "batching must produce more gradient messages"
    );
    let bulk_bytes = bulk.report.guest.bytes_sent as f64;
    let blaster_bytes = blaster.report.guest.bytes_sent as f64;
    assert!(
        (blaster_bytes - bulk_bytes).abs() / bulk_bytes < 0.05,
        "payload volume should be nearly unchanged: {bulk_bytes} vs {blaster_bytes}"
    );
}

/// Histogram packing must cut the host→guest traffic sharply under real
/// ciphers (the paper reports 3.2 GB → 1.1 GB per tree on synthesis).
#[test]
fn packing_reduces_host_traffic() {
    let s = scenario(52);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 1, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        ..TrainConfig::for_tests()
    };
    let raw = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig {
            protocol: ProtocolConfig { pack_histograms: false, ..base.protocol },
            ..base
        },
    )
    .expect("training succeeds");
    let packed = train_federated(&s.hosts, &s.guest, &base).expect("training succeeds");
    let ratio = raw.report.hosts[0].bytes_sent as f64 / packed.report.hosts[0].bytes_sent as f64;
    assert!(ratio > 2.0, "packing ratio only {ratio:.2}x");
}

/// Effectively-once delivery + FIFO links mean repeated runs are
/// bit-for-bit reproducible given a seed.
#[test]
fn runs_are_deterministic_given_seed() {
    let s = scenario(53);
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 384 },
        protocol: ProtocolConfig::baseline(),
        ..TrainConfig::for_tests()
    };
    let a = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let b = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
    let am = a.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let bm = b.model.predict_margin(&[&s.hosts[0]], &s.guest);
    assert_eq!(am, bm, "sequential protocol must be fully deterministic");
}
