//! Observability tests: the structured run report, the failure-time
//! flight recorder, and the worker-panic recovery path.
//!
//! Three invariants:
//!
//! * A panic inside a scoped histogram worker surfaces as a typed
//!   `TrainError::PartyPanicked` — with the partial telemetry of every
//!   joinable party — never as a process abort.
//! * A failing sessioned run leaves a parseable flight record (last trace
//!   events + config digest + session id) in the session directory.
//! * Tracing is observational only: spans on or off, caps big or tiny,
//!   the trained model is bitwise identical.

use std::time::Duration;

use vf2boost::channel::{FaultConfig, WanConfig};
use vf2boost::core::config::CryptoConfig;
use vf2boost::core::error::{PartyId, TrainError};
use vf2boost::core::json::{parse, Json};
use vf2boost::core::telemetry::RUN_REPORT_SCHEMA;
use vf2boost::core::trace::FLIGHT_RECORD_SCHEMA;
use vf2boost::core::{train_federated, train_federated_session, SessionConfig, TrainConfig};
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::{split_vertical, VerticalScenario};
use vf2boost::gbdt::train::GbdtParams;

fn scenario(seed: u64) -> VerticalScenario {
    let data = generate_classification(&SyntheticConfig {
        rows: 200,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed,
    });
    split_vertical(&data, &[4])
}

fn mock_cfg() -> TrainConfig {
    TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Mock,
        wan: WanConfig::instant(),
        ..TrainConfig::for_tests()
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vf2_trace_{tag}_{}", std::process::id()))
}

#[test]
fn hist_worker_panic_is_a_typed_error_with_partial_telemetry() {
    let s = scenario(91);
    let cfg = TrainConfig { workers: 4, crash_hist_worker_on_tree: Some(0), ..mock_cfg() };
    let failure = train_federated(&s.hosts, &s.guest, &cfg)
        .expect_err("an injected worker panic must abort the run");
    match &failure.error {
        TrainError::PartyPanicked { party: PartyId::Host(0), detail } => {
            assert!(
                detail.contains("histogram worker shard 0"),
                "panic attribution missing the shard: {detail}"
            );
            assert!(detail.contains("injected crash"), "payload text lost: {detail}");
        }
        other => panic!("expected PartyPanicked from host-0, got {other}"),
    }
    // The failure still carries every joinable party's telemetry: the
    // guest got far enough to send gradients before the host died.
    assert_eq!(failure.partial.hosts.len(), 1);
    assert!(failure.partial.guest.bytes_sent > 0, "guest telemetry missing");
}

#[test]
fn peer_loss_leaves_a_parseable_flight_record() {
    let s = scenario(92);
    let dir = temp_dir("flight");
    std::fs::create_dir_all(&dir).unwrap();
    // The host→guest direction blackholes early; the guest's liveness
    // supervisor declares the peer dead and dumps its flight record.
    let cfg = TrainConfig {
        fault_host_to_guest: FaultConfig {
            disconnect_after_frames: Some(6),
            ..FaultConfig::none()
        },
        peer_timeout: Duration::from_secs(30),
        peer_dead_after: Duration::from_millis(1500),
        heartbeat_interval: Duration::from_millis(200),
        ..mock_cfg()
    };
    let session = SessionConfig::new(0xF11C, &dir);
    let failure = train_federated_session(&s.hosts, &s.guest, &cfg, Some(&session))
        .expect_err("a dead peer must abort the run");
    assert!(
        matches!(failure.error, TrainError::PeerLost { .. }),
        "expected PeerLost, got {}",
        failure.error
    );

    let raw = std::fs::read_to_string(dir.join("guest.flight.json"))
        .expect("the guest must dump a flight record next to its checkpoints");
    let doc = parse(&raw).expect("flight record must be valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(FLIGHT_RECORD_SCHEMA));
    assert_eq!(doc.get("party").and_then(Json::as_str), Some("guest"));
    assert_eq!(doc.get("session_id").and_then(Json::as_f64), Some(0xF11C as f64));
    let error = doc.get("error").and_then(Json::as_str).expect("error field");
    assert!(error.contains("lost"), "error text: {error}");
    let digest = doc.get("config_digest").and_then(Json::as_str).expect("digest field");
    assert_eq!(digest.len(), 16, "digest must be 16 hex chars: {digest}");
    // The last trace events made it into the dump; the run got past
    // hello, so the ring cannot be empty.
    let events = doc.get("events").and_then(Json::as_arr).expect("events array");
    assert!(!events.is_empty(), "flight record carries no trace events");
    for ev in events {
        assert!(ev.get("at_s").and_then(Json::as_f64).is_some(), "event missing at_s");
        assert!(ev.get("kind").and_then(Json::as_str).is_some(), "event missing kind");
    }
    // The embedded telemetry snapshot parses as part of the same doc.
    let tel = doc.get("telemetry").expect("telemetry object");
    assert!(tel.get("phases").is_some() && tel.get("events").is_some());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tracing_never_changes_the_model() {
    let s = scenario(93);
    let traced = mock_cfg();
    let untraced = TrainConfig { trace_spans: false, trace_events_cap: 4, ..traced };
    let a = train_federated(&s.hosts, &s.guest, &traced).expect("traced run succeeds");
    let b = train_federated(&s.hosts, &s.guest, &untraced).expect("untraced run succeeds");
    let am = a.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let bm = b.model.predict_margin(&[&s.hosts[0]], &s.guest);
    for (i, (x, y)) in am.iter().zip(&bm).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "margin {i} diverged: {x} vs {y}");
    }
    // The traced run actually recorded spans; the untraced one recorded
    // none (its tiny ring would have overflowed otherwise).
    assert!(!a.report.guest.trace.is_empty(), "traced run recorded nothing");
    assert!(!b.report.guest.trace.spans_enabled());
}

#[test]
fn run_report_json_is_wellformed_and_phase_sums_bound_wall_time() {
    let s = scenario(94);
    let out = train_federated(&s.hosts, &s.guest, &mock_cfg()).expect("training succeeds");
    let doc = parse(&out.report.to_json()).expect("run report must be valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(RUN_REPORT_SCHEMA));
    let wall = doc.get("wall_time_s").and_then(Json::as_f64).expect("wall_time_s");
    assert!(wall > 0.0);
    let parties = doc.get("parties").and_then(Json::as_arr).expect("parties array");
    assert_eq!(parties.len(), 2, "guest + one host");
    for p in parties {
        let phases = p.get("phases").expect("phases object");
        let busy = phases.get("busy_s").and_then(Json::as_f64).expect("busy_s");
        let sum: f64 = [
            "encrypt_s",
            "build_hist_enc_s",
            "build_hist_plain_s",
            "pack_s",
            "decrypt_find_s",
            "split_nodes_s",
        ]
        .iter()
        .map(|k| phases.get(k).and_then(Json::as_f64).expect("phase field"))
        .sum();
        // busy is defined as the phase sum (each field rounds to 6
        // decimals independently, hence the slack), and no party can be
        // busy longer than the run took end to end.
        assert!((busy - sum).abs() < 1e-5, "busy_s {busy} != phase sum {sum}");
        assert!(busy <= wall + 0.25, "party busy {busy}s exceeds wall {wall}s");
        assert!(p.get("ops").is_some() && p.get("events").is_some());
        let trace = p.get("trace").expect("trace summary");
        assert!(trace.get("cap").and_then(Json::as_f64).is_some());
    }
    assert!(doc.get("trees").and_then(Json::as_arr).map(<[Json]>::len) == Some(2));
}
