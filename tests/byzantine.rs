//! Byzantine conformance harness: a scripted misbehaving peer on one end
//! of a real link, a production party on the other.
//!
//! Every deviation — replay, phase skip, future-tree traffic, inadmissible
//! payloads, lying stream flags, truncated frames — must surface as a
//! *typed* [`TrainError`] carrying partial telemetry: never a panic, never
//! a hang, never a silently wrong model. A clean wire must stay bitwise
//! identical no matter how large the misbehavior budget is.

use std::sync::Arc;
use std::time::Duration;

use vf2boost::channel::{duplex, Endpoint, MalfeasantPeer, Misdeed, WanConfig};
use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::error::{PartyId, ProtocolError, TrainError};
use vf2boost::core::guest::run_guest;
use vf2boost::core::host::run_host;
use vf2boost::core::json;
use vf2boost::core::messages::{FeatureMeta, HistPayload, Msg, RawFeatureHist};
use vf2boost::core::telemetry::{party_to_json, PartyTelemetry};
use vf2boost::core::trace::write_flight_record;
use vf2boost::core::{encode_model, train_federated, wire};
use vf2boost::crypto::paillier::RawCipher;
use vf2boost::crypto::suite::{Ciphertext, PackedCiphertext, PlainNumber, Suite};
use vf2boost::crypto::EncryptedNumber;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::data::{Dataset, FeatureColumn};
use vf2boost::gbdt::train::GbdtParams;

const DRAIN: Duration = Duration::from_secs(10);

/// Mock-suite config shared by every scripted scenario.
fn byz_cfg(budget: u32) -> TrainConfig {
    TrainConfig {
        crypto: CryptoConfig::Mock,
        misbehavior_budget: budget,
        ..TrainConfig::for_tests()
    }
}

/// A cipher the admission layer accepts under `byz_cfg` (`for_tests`
/// encodes at base_exp 8, jitter 4 ⇒ exponents 8..=11 are honest).
fn honest_cipher(v: f64) -> Ciphertext {
    Ciphertext::Plain(PlainNumber { value: v, exponent: 8 })
}

fn grad_batch(tree: u32, start_row: u32, rows: usize, last: bool, exponent: i32) -> Msg {
    let c = Ciphertext::Plain(PlainNumber { value: 0.25, exponent });
    Msg::GradBatch { tree, start_row, g: vec![c.clone(); rows], h: vec![c; rows], last }
}

/// Spawns a production host over a real instant link; the test plays the
/// (possibly byzantine) guest on the other end. The host owns one dense
/// feature over 4 rows.
fn spawn_host(
    cfg: TrainConfig,
) -> (Endpoint, std::thread::JoinHandle<Result<PartyTelemetry, vf2boost::core::error::HostFailure>>)
{
    let (guest_ep, host_ep) = duplex(WanConfig::instant());
    let data =
        Arc::new(Dataset::new(4, vec![FeatureColumn::Dense(vec![0.0, 1.0, 2.0, 3.0])], None));
    let suite = Suite::plain(cfg.encoding);
    let handle = std::thread::spawn(move || {
        run_host(0, data, cfg, suite, host_ep, None).map(|(telemetry, _)| telemetry)
    });
    (guest_ep, handle)
}

/// Consumes the host's `SessionHello` + `FeatureMeta` greetings.
fn eat_greetings(guest_ep: &Endpoint) {
    for _ in 0..2 {
        let env = guest_ep.recv_timeout(DRAIN).expect("host greeting");
        let msg = wire::decode(env.kind, env.payload).expect("greeting decodes");
        assert!(matches!(msg, Msg::SessionHello { .. } | Msg::FeatureMeta(_)));
    }
}

fn send(ep: &Endpoint, msg: &Msg) {
    ep.send(msg.kind(), wire::encode(msg).unwrap());
}

#[test]
fn host_fails_fast_on_phase_skip_before_resume() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    eat_greetings(&guest_ep);
    // A node task while the host still awaits the resume decision.
    send(&guest_ep, &Msg::NodeTask { tree: 0, node: 0, epoch: 1 });
    let failure = handle.join().unwrap().expect_err("phase skip must abort the host");
    match failure.error {
        TrainError::PeerMisbehaving { party, violations, budget, last } => {
            assert_eq!(party, PartyId::Guest);
            assert_eq!((violations, budget), (1, 0));
            assert!(matches!(*last, ProtocolError::OutOfPhase { kind: 3, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
    // Partial telemetry still reports the deviation.
    assert_eq!(failure.telemetry.events.misbehavior, 1);
}

#[test]
fn host_detects_replayed_gradient_batch() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    let mut evil = MalfeasantPeer::new(guest_ep);
    eat_greetings(evil.endpoint());
    // Send index 1 (the first gradient batch) is replayed verbatim; the
    // transport re-sequences it, so only the protocol FSM can object.
    evil.script(1, Misdeed::ReplayEarlier(1));
    let resume = Msg::Resume { session_id: 0, tree_count: 0 };
    evil.send(resume.kind(), wire::encode(&resume).unwrap());
    let batch = grad_batch(0, 0, 2, false, 8);
    evil.send(batch.kind(), wire::encode(&batch).unwrap());
    let failure = handle.join().unwrap().expect_err("replay must abort the host");
    match failure.error {
        TrainError::PeerMisbehaving { last, .. } => {
            assert!(matches!(*last, ProtocolError::StaleOrReplayed { kind: 2, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn host_rejects_future_tree_gradients() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    eat_greetings(&guest_ep);
    send(&guest_ep, &Msg::Resume { session_id: 0, tree_count: 0 });
    send(&guest_ep, &grad_batch(1, 0, 4, false, 8));
    let failure = handle.join().unwrap().expect_err("future tree must abort the host");
    match failure.error {
        TrainError::PeerMisbehaving { last, .. } => {
            assert!(matches!(*last, ProtocolError::OutOfPhase { kind: 2, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn host_rejects_out_of_window_cipher_exponent() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    eat_greetings(&guest_ep);
    send(&guest_ep, &Msg::Resume { session_id: 0, tree_count: 0 });
    // Exponent 99 is outside the negotiated jitter window [8, 11]: the
    // payload is structurally fine but semantically inadmissible.
    send(&guest_ep, &grad_batch(0, 0, 4, true, 99));
    let failure = handle.join().unwrap().expect_err("bad exponent must abort the host");
    match failure.error {
        TrainError::PeerMisbehaving { last, .. } => {
            assert!(matches!(*last, ProtocolError::Inadmissible { kind: 2, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn host_rejects_gradient_rows_past_instance_count() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    eat_greetings(&guest_ep);
    send(&guest_ep, &Msg::Resume { session_id: 0, tree_count: 0 });
    // 6 rows declared against a 4-row dataset: caught before any buffer
    // is sized from peer-controlled counts.
    send(&guest_ep, &grad_batch(0, 0, 6, true, 8));
    let failure = handle.join().unwrap().expect_err("row overflow must abort the host");
    match failure.error {
        TrainError::PeerMisbehaving { last, .. } => {
            assert!(matches!(*last, ProtocolError::Inadmissible { kind: 2, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn host_rejects_lying_last_flag_with_uncovered_rows() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    eat_greetings(&guest_ep);
    send(&guest_ep, &Msg::Resume { session_id: 0, tree_count: 0 });
    // `last: true` after covering only 2 of 4 rows.
    send(&guest_ep, &grad_batch(0, 0, 2, true, 8));
    let failure = handle.join().unwrap().expect_err("lying last flag must abort the host");
    assert!(
        matches!(
            failure.error,
            TrainError::Protocol(ProtocolError::IncompleteGradients { expected: 4, got: 2 })
        ),
        "{}",
        failure.error
    );
}

#[test]
fn truncated_frame_surfaces_as_malformed_not_a_panic() {
    let (guest_ep, handle) = spawn_host(byz_cfg(0));
    let mut evil = MalfeasantPeer::new(guest_ep);
    eat_greetings(evil.endpoint());
    // The resume frame arrives transport-valid but chopped to one byte.
    evil.script(0, Misdeed::Truncate(1));
    let resume = Msg::Resume { session_id: 0, tree_count: 0 };
    evil.send(resume.kind(), wire::encode(&resume).unwrap());
    let failure = handle.join().unwrap().expect_err("truncated frame must abort the host");
    assert!(
        matches!(
            failure.error,
            TrainError::Protocol(ProtocolError::Malformed { from: PartyId::Guest, .. })
        ),
        "{}",
        failure.error
    );
}

#[test]
fn budget_tolerates_violations_and_reports_them() {
    let (guest_ep, handle) = spawn_host(byz_cfg(2));
    eat_greetings(&guest_ep);
    // Two phase-skips, both within budget: dropped and counted.
    send(&guest_ep, &Msg::NodeTask { tree: 0, node: 0, epoch: 1 });
    send(&guest_ep, &Msg::NodeTask { tree: 0, node: 0, epoch: 1 });
    // Then an entirely honest (empty) session.
    send(&guest_ep, &Msg::Resume { session_id: 0, tree_count: 0 });
    send(&guest_ep, &Msg::Shutdown);
    let telemetry = handle.join().unwrap().expect("run stays up within budget");
    assert_eq!(telemetry.events.misbehavior, 2);
    // The counters reach the run-report JSON.
    let doc = json::parse(&party_to_json(&telemetry, 0)).expect("telemetry JSON parses");
    let events = doc.get("events").expect("events object");
    assert_eq!(events.get("misbehavior").and_then(json::Json::as_f64), Some(2.0));
    assert!(events.get("stale_msgs_dropped").is_some());
}

#[test]
fn budget_exceeded_reports_total_violations() {
    let (guest_ep, handle) = spawn_host(byz_cfg(1));
    eat_greetings(&guest_ep);
    for _ in 0..2 {
        send(&guest_ep, &Msg::NodeTask { tree: 0, node: 0, epoch: 1 });
    }
    let failure = handle.join().unwrap().expect_err("second violation exceeds budget 1");
    match failure.error {
        TrainError::PeerMisbehaving { violations, budget, .. } => {
            assert_eq!((violations, budget), (2, 1));
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(failure.telemetry.events.misbehavior, 2);
}

/// A labelled dataset for driving `run_guest` against a scripted host.
fn guest_data() -> Arc<Dataset> {
    Arc::new(generate_classification(&SyntheticConfig {
        rows: 48,
        features: 3,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 77,
    }))
}

fn spawn_guest(
    cfg: TrainConfig,
) -> (Endpoint, std::thread::JoinHandle<Option<vf2boost::core::error::GuestFailure>>) {
    let (guest_ep, host_ep) = duplex(WanConfig::instant());
    let data = guest_data();
    let suite = Suite::plain(cfg.encoding);
    let handle =
        std::thread::spawn(move || run_guest(data, cfg, suite, vec![guest_ep], None, None).err());
    (host_ep, handle)
}

/// Pulls frames off the guest→host direction until the guest hangs up,
/// handing each decoded message to `react`.
fn drain_guest(host_ep: &Endpoint, mut react: impl FnMut(Msg)) {
    while let Ok(env) = host_ep.recv_timeout(DRAIN) {
        if let Ok(msg) = wire::decode(env.kind, env.payload) {
            react(msg);
        }
    }
}

#[test]
fn guest_rejects_wrong_kind_during_handshake() {
    let (host_ep, handle) = spawn_guest(byz_cfg(0));
    // Feature metadata before the session hello: a handshake-order skip.
    send(&host_ep, &Msg::FeatureMeta(vec![FeatureMeta { num_bins: 8, zero_bin: 0 }]));
    drain_guest(&host_ep, |_| {});
    let failure = handle.join().unwrap().expect("handshake skip must abort the guest");
    match failure.error {
        TrainError::PeerMisbehaving { party, last, .. } => {
            assert_eq!(party, PartyId::Host(0));
            assert!(matches!(*last, ProtocolError::OutOfPhase { kind: 1, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
    assert_eq!(failure.telemetry.events.misbehavior, 1);
}

#[test]
fn guest_rejects_unsolicited_placement() {
    let (host_ep, handle) = spawn_guest(byz_cfg(0));
    send(&host_ep, &Msg::SessionHello { session_id: 0, epoch: 0, durable: vec![] });
    send(&host_ep, &Msg::FeatureMeta(vec![FeatureMeta { num_bins: 8, zero_bin: 0 }]));
    // A placement that answers no outstanding split choice.
    send(&host_ep, &Msg::Placement { tree: 0, node: 0, placement: vec![true, false] });
    drain_guest(&host_ep, |_| {});
    let failure = handle.join().unwrap().expect("unsolicited placement must abort the guest");
    match failure.error {
        TrainError::PeerMisbehaving { party, last, .. } => {
            assert_eq!(party, PartyId::Host(0));
            assert!(matches!(*last, ProtocolError::StaleOrReplayed { kind: 7, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn guest_rejects_wrong_length_histograms() {
    let (host_ep, handle) = spawn_guest(byz_cfg(0));
    send(&host_ep, &Msg::SessionHello { session_id: 0, epoch: 0, durable: vec![] });
    // Two features negotiated...
    send(&host_ep, &Msg::FeatureMeta(vec![FeatureMeta { num_bins: 8, zero_bin: 0 }; 2]));
    // ...but the histogram reply to the first task carries only one.
    let mut replied = false;
    drain_guest(&host_ep, |msg| {
        if let Msg::NodeTask { tree, node, epoch } = msg {
            if !replied {
                replied = true;
                let short = RawFeatureHist {
                    g: vec![honest_cipher(0.0); 8],
                    h: vec![honest_cipher(0.0); 8],
                };
                send(
                    &host_ep,
                    &Msg::NodeHistograms {
                        tree,
                        node,
                        epoch,
                        payload: HistPayload::Raw(vec![short]),
                    },
                );
            }
        }
    });
    assert!(replied, "the guest never issued a node task");
    let failure = handle.join().unwrap().expect("wrong-length histograms must abort the guest");
    match failure.error {
        TrainError::PeerMisbehaving { party, last, .. } => {
            assert_eq!(party, PartyId::Host(0));
            assert!(matches!(*last, ProtocolError::Inadmissible { kind: 4, .. }), "{last}");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn clean_wire_runs_identical_under_any_budget() {
    let data = generate_classification(&SyntheticConfig {
        rows: 240,
        features: 12,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 91,
    });
    let s = split_vertical(&data, &[6]);
    let run = |budget: u32| {
        let cfg = TrainConfig {
            gbdt: GbdtParams { num_trees: 3, max_layers: 4, ..Default::default() },
            crypto: CryptoConfig::Mock,
            misbehavior_budget: budget,
            ..TrainConfig::for_tests()
        };
        train_federated(&s.hosts, &s.guest, &cfg).expect("clean run succeeds")
    };
    let strict = run(0);
    let lenient = run(7);
    // The admission layer is pure overhead on an honest wire: no
    // misbehavior, and the model is bitwise identical either way.
    assert_eq!(encode_model(&strict.model), encode_model(&lenient.model));
    assert_eq!(strict.train_margins, lenient.train_margins);
    for t in std::iter::once(&strict.report.guest)
        .chain(&strict.report.hosts)
        .chain(std::iter::once(&lenient.report.guest))
        .chain(&lenient.report.hosts)
    {
        assert_eq!(t.events.misbehavior, 0, "{} saw phantom misbehavior", t.name);
    }
}

/// One representative message per wire kind, with both cipher flavours.
fn mutation_corpus() -> Vec<Msg> {
    let plain = honest_cipher(1.5);
    let paillier =
        Ciphertext::Paillier(EncryptedNumber { cipher: RawCipher::from(0x1234u32), exponent: 9 });
    vec![
        Msg::FeatureMeta(vec![
            FeatureMeta { num_bins: 16, zero_bin: 2 },
            FeatureMeta { num_bins: 5, zero_bin: 0 },
        ]),
        Msg::GradBatch {
            tree: 1,
            start_row: 32,
            g: vec![plain.clone(), paillier.clone()],
            h: vec![paillier.clone(), plain.clone()],
            last: true,
        },
        Msg::NodeTask { tree: 2, node: 5, epoch: 3 },
        Msg::NodeHistograms {
            tree: 0,
            node: 1,
            epoch: 1,
            payload: HistPayload::Raw(vec![RawFeatureHist {
                g: vec![plain.clone(); 3],
                h: vec![paillier; 3],
            }]),
        },
        Msg::NodeHistograms {
            tree: 0,
            node: 2,
            epoch: 1,
            payload: HistPayload::Packed(vec![vf2boost::core::messages::PackedFeatureHist {
                g: vec![PackedCiphertext::Paillier {
                    cipher: RawCipher::from(0xbeefu32),
                    exponent: 8,
                    count: 4,
                    slot_bits: 32,
                }],
                h: vec![PackedCiphertext::Plain(vec![0.5, 1.5, 2.5, 3.5])],
                bins: 4,
            }]),
        },
        Msg::ApplyPlacement { tree: 0, node: 3, placement: vec![true, false, true, true] },
        Msg::HostSplitChosen { tree: 0, node: 3, feature: 7, bin: 4 },
        Msg::Placement { tree: 0, node: 3, placement: vec![false; 9] },
        Msg::NodeLeaf { tree: 0, node: 6 },
        Msg::TreeDone { tree: 0 },
        Msg::Shutdown,
        Msg::SessionHello { session_id: 0xF00D, epoch: 2, durable: vec![1, 3] },
        Msg::Resume { session_id: 0xF00D, tree_count: 3 },
        Msg::Heartbeat { seq: 41 },
    ]
}

#[test]
fn decode_survives_single_byte_mutations() {
    // Property: for every wire kind, every single-byte corruption of a
    // valid encoding either decodes to *some* message or returns a typed
    // `WireError` — it never panics and never over-allocates.
    let mut rejected = 0u64;
    for msg in mutation_corpus() {
        let kind = msg.kind();
        let bytes = wire::encode(&msg).unwrap();
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80, 0xff] {
                let mut mutated = bytes.to_vec();
                mutated[i] ^= mask;
                if wire::decode(kind, mutated.into()).is_err() {
                    rejected += 1;
                }
            }
        }
        // Valid payloads under arbitrary (including unassigned) kind tags.
        for tag in 0..=32u16 {
            let _ = wire::decode(tag, bytes.clone());
        }
    }
    assert!(rejected > 0, "no mutation was ever rejected — the corpus is too small");
}

#[test]
fn flight_record_round_trips_violation_errors() {
    let errors: Vec<TrainError> = vec![
        TrainError::PeerMisbehaving {
            party: PartyId::Host(1),
            violations: 3,
            budget: 2,
            last: Box::new(ProtocolError::OutOfPhase {
                from: PartyId::Host(1),
                kind: 4,
                phase: "active",
                context: "histograms for a task never issued",
            }),
        },
        TrainError::Protocol(ProtocolError::Inadmissible {
            from: PartyId::Guest,
            kind: 2,
            context: "ciphertext outside [0, n^2)",
        }),
        TrainError::Protocol(ProtocolError::StaleOrReplayed {
            from: PartyId::Guest,
            kind: 2,
            context: "gradient batch replays rows already received",
        }),
    ];
    let dir = std::env::temp_dir().join(format!("vf2boost-byz-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, err) in errors.iter().enumerate() {
        let mut telemetry = PartyTelemetry { name: "guest".into(), ..Default::default() };
        telemetry.events.misbehavior = 3;
        let path = dir.join(format!("flight-{i}.json"));
        write_flight_record(&path, 7, 0xdead_beef, &err.to_string(), &telemetry)
            .expect("flight record writes");
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap())
            .expect("flight record is valid JSON");
        // The error string survives JSON escaping verbatim, and the
        // misbehavior counter rides along in the embedded telemetry.
        assert_eq!(doc.get("error").and_then(json::Json::as_str), Some(err.to_string().as_str()));
        let events = doc.get("telemetry").and_then(|t| t.get("events")).expect("events");
        assert_eq!(events.get("misbehavior").and_then(json::Json::as_f64), Some(3.0));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
