//! Every combination of the four protocol optimizations must produce an
//! equivalent model — the optimizations change *when* and *how* work is
//! done (§4–§5), never *what* is computed.

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::train::GbdtParams;

#[test]
fn all_sixteen_protocol_combinations_agree() {
    let data = generate_classification(&SyntheticConfig {
        rows: 300,
        features: 10,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 77,
    });
    let s = split_vertical(&data, &[5]);

    let mut reference: Option<Vec<f64>> = None;
    for mask in 0..16u8 {
        let protocol = ProtocolConfig {
            optimistic: mask & 1 != 0,
            blaster_batch: if mask & 2 != 0 { Some(64) } else { None },
            reordered_accumulation: mask & 4 != 0,
            pack_histograms: mask & 8 != 0,
            // Histogram subtraction stays on (the vf2boost default) for
            // every mask: the derive-vs-direct decision is a pure function
            // of the row lists, so cross-mask value identity is preserved.
            ..ProtocolConfig::vf2boost()
        };
        let cfg = TrainConfig {
            gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
            crypto: CryptoConfig::Mock,
            protocol,
            ..TrainConfig::for_tests()
        };
        let out = train_federated(&s.hosts, &s.guest, &cfg).expect("training succeeds");
        let margins = out.model.predict_margin(&[&s.hosts[0]], &s.guest);
        // Re-ordered accumulation (bit 2) and packing (bit 3) change the
        // f64 summation order, so those combinations are compared with a
        // small tolerance; the purely scheduling-level flags (optimistic,
        // blaster) must be bit-exact.
        let tol = if mask & 0b1100 == 0 { 1e-12 } else { 1e-3 };
        match &reference {
            None => reference = Some(margins),
            Some(reference) => {
                let mean: f64 =
                    reference.iter().zip(&margins).map(|(a, b)| (a - b).abs()).sum::<f64>()
                        / margins.len() as f64;
                assert!(mean < tol, "combination {mask:04b} diverged: mean |Δ| = {mean}");
            }
        }
    }
}

/// The optimization flags must also agree under real cryptography (two
/// representative corners rather than all sixteen, for speed).
#[test]
fn paillier_baseline_and_vf2boost_agree() {
    let data = generate_classification(&SyntheticConfig {
        rows: 150,
        features: 8,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.0,
        seed: 78,
    });
    let s = split_vertical(&data, &[4]);
    let base = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        ..TrainConfig::for_tests()
    };
    let baseline = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig { protocol: ProtocolConfig::baseline(), ..base },
    )
    .expect("training succeeds");
    let vf2 = train_federated(
        &s.hosts,
        &s.guest,
        &TrainConfig { protocol: ProtocolConfig::vf2boost(), ..base },
    )
    .expect("training succeeds");
    let bm = baseline.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let vm = vf2.model.predict_margin(&[&s.hosts[0]], &s.guest);
    let diff = bm.iter().zip(&vm).map(|(a, b)| (a - b).abs()).sum::<f64>() / bm.len() as f64;
    assert!(diff < 1e-3, "mean |Δmargin| = {diff}");
}
