//! Credit scoring across a bank and a social-platform partner — the
//! paper's motivating scenario (§1): a label-owning enterprise (the bank,
//! Party B) strengthens its risk model with behavioural features held by a
//! partner with a large user base (Party A), without either side revealing
//! its data.
//!
//! The example compares three models on held-out applicants:
//!   1. bank-only      — the guest trains on its own features,
//!   2. co-located     — the (im)possible ideal of pooling raw data,
//!   3. federated      — VF²Boost over Paillier.
//!
//! The federated AUC should match the co-located AUC (the lossless
//! property) while the bank-only model trails both.
//!
//! Run with: `cargo run --release --example credit_scoring`

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::metrics::{accuracy, auc};
use vf2boost::gbdt::train::{GbdtParams, Trainer};

fn main() {
    // 28 features: the partner (host) holds 18 behavioural signals, the
    // bank (guest) holds 10 financial ones. Signal is spread over both.
    let data = generate_classification(&SyntheticConfig {
        rows: 3_000,
        features: 28,
        density: 1.0,
        informative_frac: 0.4,
        label_noise: 0.05,
        seed: 1234,
    });
    let (train, valid) = data.split_rows(2_400);
    let scenario = split_vertical(&train, &[18]);
    let valid_scenario = split_vertical(&valid, &[18]);
    let vy = valid_scenario.guest.labels().unwrap();

    let gbdt = GbdtParams { num_trees: 8, max_layers: 5, ..Default::default() };

    // 1. Bank-only baseline.
    let bank_only = Trainer::new(gbdt).fit(&scenario.guest);
    let bank_auc = auc(vy, &bank_only.predict_margin(&valid_scenario.guest));

    // 2. Co-located ideal (what a single owner of all data would get).
    let colocated = Trainer::new(gbdt).fit(&train);
    let co_auc = auc(vy, &colocated.predict_margin(&valid));

    // 3. Federated with VF²Boost.
    let cfg = TrainConfig {
        gbdt,
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        wan: vf2boost::channel::WanConfig::instant(),
        ..TrainConfig::for_tests()
    };
    let out = train_federated(&scenario.hosts, &scenario.guest, &cfg).expect("training succeeds");
    let margins = out.model.predict_margin(&[&valid_scenario.hosts[0]], &valid_scenario.guest);
    let fed_auc = auc(vy, &margins);
    let probs: Vec<f64> = margins.iter().map(|&m| out.model.loss.transform(m)).collect();

    println!("== credit scoring: validation metrics ==");
    println!("bank-only AUC  : {bank_auc:.4}");
    println!("co-located AUC : {co_auc:.4}");
    println!("federated AUC  : {fed_auc:.4}  (accuracy {:.4})", accuracy(vy, &probs));
    println!();
    println!(
        "federated training ran {} trees in {:.2?} ({} dirty nodes rolled back)",
        out.model.trees.len(),
        out.report.wall_time,
        out.report.guest.events.dirty_nodes
    );
    println!(
        "partner's features won {} of {} splits",
        out.model.total_host_splits(),
        out.model.total_host_splits() + out.model.total_guest_splits()
    );

    assert!(
        fed_auc > bank_auc + 0.01,
        "federation must add measurable lift over the bank-only model"
    );
    assert!(
        (fed_auc - co_auc).abs() < 0.05,
        "federated training should track the co-located ideal (lossless property)"
    );
    println!("\nlossless check passed: federated ≈ co-located, both beat bank-only");
}
