//! A tour of the cryptographic substrate: Paillier keygen, encryption,
//! the homomorphic operations GBDT relies on, and the paper's two
//! customizations — re-ordered accumulation (§5.1) and polynomial-based
//! packing (§5.2) — with live operation counts.
//!
//! Run with: `cargo run --release --example crypto_tour`

use rand::rngs::StdRng;
use rand::SeedableRng;
use vf2boost::crypto::encoding::EncodingConfig;
use vf2boost::crypto::packing::PackingPlan;
use vf2boost::crypto::suite::{Ciphertext, Suite};

fn main() {
    let encoding = EncodingConfig { base: 16, base_exp: 8, jitter: 4 };
    println!("generating a 1024-bit Paillier key pair...");
    let suite = Suite::paillier_seeded(1024, 42, encoding).expect("keygen");
    let mut rng = StdRng::seed_from_u64(7);

    // --- Basic homomorphic arithmetic -------------------------------
    let a = suite.encrypt(0.75, &mut rng).unwrap();
    let b = suite.encrypt(-0.25, &mut rng).unwrap();
    let sum = suite.add(&a, &b).unwrap();
    println!("HAdd:  ⟦0.75⟧ ⊕ ⟦-0.25⟧  →  {}", suite.decrypt(&sum).unwrap());

    let shifted = suite.add_plain(&a, 100.0).unwrap();
    println!("plain shift: ⟦0.75⟧ + 100  →  {}", suite.decrypt(&shifted).unwrap());

    // --- Re-ordered accumulation ------------------------------------
    // Sum 200 ciphers whose exponents are jittered (4 distinct values).
    let values: Vec<f64> = (0..200).map(|i| (i as f64) * 0.001 - 0.1).collect();
    let cts: Vec<Ciphertext> =
        values.iter().map(|&v| suite.encrypt(v, &mut rng).unwrap()).collect();
    let expected: f64 = values.iter().sum();

    let naive_suite = suite.public_half();
    let mut acc = cts[0].clone();
    for c in &cts[1..] {
        acc = naive_suite.add(&acc, c).unwrap();
    }
    let naive_scalings = naive_suite.counters().snapshot().scalings;

    let re_suite = suite.public_half();
    // Group by exponent, sum within groups, merge across groups.
    let mut groups: std::collections::BTreeMap<i32, Ciphertext> = Default::default();
    for c in &cts {
        match groups.get_mut(&c.exponent()) {
            None => {
                groups.insert(c.exponent(), c.clone());
            }
            Some(acc) => re_suite.add_assign_same_exp(acc, c).unwrap(),
        }
    }
    let mut merged: Option<Ciphertext> = None;
    for (_, g) in groups {
        merged = Some(match merged {
            None => g,
            Some(prev) => re_suite.add(&prev, &g).unwrap(),
        });
    }
    let re_scalings = re_suite.counters().snapshot().scalings;
    println!("\nre-ordered accumulation of 200 jittered ciphers (§5.1):");
    println!("  naive      : {naive_scalings} cipher scalings");
    println!("  re-ordered : {re_scalings} cipher scalings (E-1)");
    let naive_sum = suite.decrypt(&acc).unwrap();
    let re_sum = suite.decrypt(&merged.unwrap()).unwrap();
    assert!((naive_sum - expected).abs() < 1e-6);
    assert!((re_sum - expected).abs() < 1e-6);
    println!("  both sums  : {re_sum:.6} (expected {expected:.6})");

    // --- Polynomial-based packing ------------------------------------
    let pk = suite.public_key().unwrap();
    let plan = PackingPlan::widest(pk, 64).unwrap();
    println!("\npacking (§5.2): a 1024-bit key fits {} 64-bit slots per cipher", plan.slots);
    let slots: Vec<Ciphertext> =
        (0..plan.slots).map(|i| suite.encrypt_at(i as f64 + 0.5, 10, &mut rng).unwrap()).collect();
    let before = suite.counters().snapshot();
    let packed = suite.pack(&slots, &plan).unwrap();
    let unpacked = suite.unpack_decrypt(&packed).unwrap();
    let delta = suite.counters().snapshot().since(&before);
    println!(
        "  {} bins recovered with {} decryption(s): {:?}",
        unpacked.len(),
        delta.dec,
        unpacked.iter().map(|v| (v * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    assert_eq!(delta.dec, 1);
    for (i, v) in unpacked.iter().enumerate() {
        assert!((v - (i as f64 + 0.5)).abs() < 1e-6);
    }
    println!("\nall checks passed");
}
