//! Multi-party CTR prediction over sparse features (the paper's §6.4
//! scalability-w.r.t.-parties setting).
//!
//! An advertiser (the guest, with click labels) unites with *two* data
//! partners, each contributing a sparse slice of high-dimensional
//! behavioural features. The example shows the AUC climbing as parties
//! join — the shape of the paper's Table 6 — and reports how histogram
//! packing shrinks cross-party traffic.
//!
//! Run with: `cargo run --release --example ad_ctr_multiparty`

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::protocol::ProtocolConfig;
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_even;
use vf2boost::gbdt::data::Dataset;
use vf2boost::gbdt::metrics::auc;
use vf2boost::gbdt::train::{GbdtParams, Trainer};

fn main() {
    // Sparse, wide-ish data: 60 features at 20% density across 3 parties.
    let data = generate_classification(&SyntheticConfig {
        rows: 3_000,
        features: 60,
        density: 0.2,
        informative_frac: 0.4,
        label_noise: 0.03,
        seed: 99,
    });
    let (train, valid) = data.split_rows(2_400);
    let gbdt = GbdtParams { num_trees: 6, max_layers: 5, ..Default::default() };

    // Every party owns a fixed 20-feature slice (the paper's Table 6
    // layout: features divided into equal subsets, one per party), so each
    // extra partner brings genuinely new signal.
    let per_party = 20usize;
    let take = |d: &vf2boost::gbdt::data::Dataset, k: usize| {
        let feats: Vec<usize> = (0..k * per_party).collect();
        d.select_features(&feats, true)
    };

    // Guest-only reference: the advertiser's own 20 features.
    let solo_train = take(&train, 1);
    let solo_valid = take(&valid, 1);
    let solo = Trainer::new(gbdt).fit(&solo_train);
    let vy = solo_valid.labels().unwrap();
    let solo_auc = auc(vy, &solo.predict_margin(&solo_valid));
    println!("guest-only AUC           : {solo_auc:.4}");

    // Federated with 2 and 3 parties (mock crypto keeps the example fast;
    // swap `CryptoConfig::Mock` for `Paillier { key_bits: 2048 }` for a
    // production-realistic run).
    for parties in [2usize, 3] {
        let scenario = split_even(&take(&train, parties), parties);
        let valid_scenario = split_even(&take(&valid, parties), parties);
        let cfg = TrainConfig {
            gbdt,
            crypto: CryptoConfig::Mock,
            wan: vf2boost::channel::WanConfig::instant(),
            ..TrainConfig::for_tests()
        };
        let out =
            train_federated(&scenario.hosts, &scenario.guest, &cfg).expect("training succeeds");
        let host_refs: Vec<&Dataset> = valid_scenario.hosts.iter().collect();
        let margins = out.model.predict_margin(&host_refs, &valid_scenario.guest);
        let fed_auc = auc(valid_scenario.guest.labels().unwrap(), &margins);
        println!(
            "{parties}-party federated AUC    : {fed_auc:.4}  \
             ({} host splits, {:.2?} wall)",
            out.model.total_host_splits(),
            out.report.wall_time
        );
        assert!(fed_auc > solo_auc, "each extra party should add signal");
    }

    // Packing ablation: bytes on the wire with and without §5.2's packing
    // (small Paillier key so the example stays quick).
    let scenario = split_even(&train, 2);
    let base_cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 2, max_layers: 4, ..gbdt },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        wan: vf2boost::channel::WanConfig::instant(),
        ..TrainConfig::for_tests()
    };
    let packed =
        train_federated(&scenario.hosts, &scenario.guest, &base_cfg).expect("training succeeds");
    let raw_cfg = TrainConfig {
        protocol: ProtocolConfig { pack_histograms: false, ..base_cfg.protocol },
        ..base_cfg
    };
    let raw =
        train_federated(&scenario.hosts, &scenario.guest, &raw_cfg).expect("training succeeds");
    let packed_bytes = packed.report.hosts[0].bytes_sent;
    let raw_bytes = raw.report.hosts[0].bytes_sent;
    println!("\nhost→guest histogram traffic per run:");
    println!("  raw ciphers : {raw_bytes} bytes");
    println!(
        "  packed      : {packed_bytes} bytes  ({:.1}x smaller)",
        raw_bytes as f64 / packed_bytes as f64
    );
    assert!(packed_bytes * 2 < raw_bytes, "packing should cut histogram bytes sharply");
}
