//! Quickstart: train a vertical federated GBDT between two parties.
//!
//! Two enterprises hold different features of the same users; only the
//! guest (Party B) has labels. The example trains with the full VF²Boost
//! protocol (blaster encryption, optimistic node-splitting, re-ordered
//! accumulation, histogram packing) over real Paillier cryptography and
//! compares the federated model against training on the guest's features
//! alone.
//!
//! Run with: `cargo run --release --example quickstart`

use vf2boost::core::config::{CryptoConfig, TrainConfig};
use vf2boost::core::train_federated;
use vf2boost::datagen::synthetic::{generate_classification, SyntheticConfig};
use vf2boost::datagen::vertical::split_vertical;
use vf2boost::gbdt::metrics::auc;
use vf2boost::gbdt::train::{GbdtParams, Trainer};

fn main() {
    // 1. A co-located dataset stands in for the two enterprises' joined
    //    data (in production this alignment comes from PSI).
    let data = generate_classification(&SyntheticConfig {
        rows: 2_000,
        features: 16,
        density: 1.0,
        informative_frac: 0.5,
        label_noise: 0.02,
        seed: 7,
    });
    let (train, valid) = data.split_rows(1_600);

    // 2. Vertical split: host (Party A) gets 8 features, guest (Party B)
    //    the other 8 plus the labels.
    let scenario = split_vertical(&train, &[8]);
    let valid_scenario = split_vertical(&valid, &[8]);

    // 3. Federated training with the full VF²Boost protocol. A 512-bit
    //    key keeps this example fast; production uses 2048 bits.
    let cfg = TrainConfig {
        gbdt: GbdtParams { num_trees: 5, max_layers: 4, ..Default::default() },
        crypto: CryptoConfig::Paillier { key_bits: 512 },
        wan: vf2boost::channel::WanConfig::instant(),
        ..TrainConfig::for_tests()
    };
    println!("training {} trees over Paillier-{:?}...", cfg.gbdt.num_trees, cfg.crypto);
    let out = train_federated(&scenario.hosts, &scenario.guest, &cfg).expect("training succeeds");

    // 4. Joint prediction on held-out data.
    let margins = out.model.predict_margin(&[&valid_scenario.hosts[0]], &valid_scenario.guest);
    let fed_auc = auc(valid_scenario.guest.labels().unwrap(), &margins);

    // 5. Baseline: the guest training alone on its own features.
    let solo = Trainer::new(GbdtParams { num_trees: 5, max_layers: 4, ..Default::default() })
        .fit(&scenario.guest);
    let solo_auc =
        auc(valid_scenario.guest.labels().unwrap(), &solo.predict_margin(&valid_scenario.guest));

    println!("\n== results ==");
    println!("federated validation AUC : {fed_auc:.4}");
    println!("guest-only validation AUC: {solo_auc:.4}");
    println!(
        "split ownership          : {} guest / {} host",
        out.model.total_guest_splits(),
        out.model.total_host_splits()
    );
    println!("\n== telemetry ==");
    println!("wall time          : {:.2?}", out.report.wall_time);
    println!("guest enc/dec ops  : {} / {}", out.report.guest.ops.enc, out.report.guest.ops.dec);
    println!("host HAdd ops      : {}", out.report.hosts[0].ops.hadd);
    println!(
        "optimistic / dirty : {} / {}",
        out.report.guest.events.optimistic_splits, out.report.guest.events.dirty_nodes
    );
    println!("WAN bytes          : {}", out.report.total_bytes());
    assert!(fed_auc > solo_auc, "federation should beat the guest-only model");
    println!("\nfederation improved AUC by {:+.4}", fed_auc - solo_auc);
}
