//! # vf2boost
//!
//! Umbrella crate for the VF²Boost reproduction (SIGMOD 2021): very fast
//! vertical federated gradient boosting for cross-enterprise learning.
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`crypto`] — Paillier cryptosystem with GBDT-customized operations
//! * [`gbdt`] — the histogram-based GBDT engine (non-federated baseline)
//! * [`channel`] — simulated cross-party message queues
//! * [`datagen`] — synthetic datasets and vertical partitioning
//! * [`core`] — the federated training protocols (sequential & concurrent)
//!
//! See `examples/quickstart.rs` for a complete federated training run.

pub use vf2_channel as channel;
pub use vf2_crypto as crypto;
pub use vf2_datagen as datagen;
pub use vf2_gbdt as gbdt;
pub use vf2boost_core as core;
