#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

# Panic-path gate: non-test code in the protocol and channel crates may
# not unwrap/expect (crate-level cfg_attr(not(test), deny(...)) lints;
# --lib builds without cfg(test) so only shipping code is checked).
echo "== clippy panic-path gate (core + channel, non-test) =="
cargo clippy -p vf2boost-core -p vf2-channel --lib -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

# Kill-and-restart chaos gate: a party is crashed mid-run and the job is
# resumed from checkpoints; the model must come back bitwise identical
# across a deterministic 3-seed matrix (61/71/81) covering every
# sequential/optimistic x raw/reordered/packed mode. The outer timeout
# guarantees a liveness bug fails the gate instead of hanging it.
echo "== chaos resume gate (3-seed matrix, 15 min cap) =="
timeout 900 cargo test -q --test resume

# Byzantine conformance gate: scripted protocol deviations (replays,
# phase skips, inadmissible payloads, truncated frames) must surface as
# typed errors — never a panic. The outer timeout turns an admission
# livelock or a hung party into a failure instead of a stuck job.
echo "== byzantine conformance gate (5 min cap) =="
timeout 300 cargo test -q --test byzantine

# Dropout chaos gate: a host is killed *inside* the node loop (between a
# NodeTask and its histogram answer) across a seeded matrix. AwaitRejoin
# must produce a bitwise-identical model after the live rejoin (3 seeds x
# sequential/optimistic x raw/packed, plus a two-host survivor-rewind
# run); Degrade must complete with a typed per-tree party_set record; a
# stalled-but-alive link must be ridden out by the retry layer without a
# quarantine. The outer timeout turns a rejoin hang into a failure.
echo "== dropout chaos gate (in-run host loss, 10 min cap) =="
timeout 600 cargo test -q --test resume dropout_chaos

# Fixed-limb crypto gate: the Montgomery backend's property tests — limb
# mul/REDC/modpow vs. the num-bigint reference at every dispatch width,
# including carry-edge and modulus-adjacent vectors — plus the rest of
# the vf2-crypto suite. A runaway width loop fails instead of hanging.
echo "== fixed-limb property gate (vf2-crypto, 5 min cap) =="
timeout 300 cargo test -q -p vf2-crypto

# Backend-equivalence gate: models trained under the fixed-limb core and
# the num-bigint fallback must be bitwise identical in every protocol
# mode, and the op counters must fingerprint the backend that really ran.
echo "== crypto backend equivalence gate (10 min cap) =="
timeout 600 cargo test -q --test backend_equivalence

# Peer-facing admission checks must hold in release builds: debug_assert
# is banned from the wire decoder and the semantic validators.
echo "== no-debug_assert gate (wire/validate/hist_enc) =="
if grep -n "debug_assert" \
    crates/core/src/wire.rs crates/core/src/validate.rs crates/core/src/hist_enc.rs; then
  echo "debug_assert found in an admission-critical module" >&2
  exit 1
fi

# Many-party chaos gate: 8 hosts behind heterogeneous faulty WANs
# (rolling staggered stalls, reordering links, a bandwidth/latency
# spread) must train bitwise-identical models under the lockstep and
# pipelined schedulers in every protocol mode, and a mid-run
# kill-and-rejoin under the pipelined scheduler must hold the rewind
# barrier. The outer timeout turns a scheduler livelock into a failure.
echo "== many-party scheduler chaos gate (8 hosts, 10 min cap) =="
timeout 600 cargo test -q --test many_party

# GH-packing losslessness gate: with forward-path (g, h) pair packing on,
# every protocol mode x bignum backend must reproduce the unpacked run's
# split decisions exactly (bitwise-identical final margins). The outer
# timeout turns a hung packed run into a failure instead of a stuck job.
echo "== gh-packing losslessness gate (10 min cap) =="
timeout 600 cargo test -q --test losslessness gh_packing

echo "== cargo bench --no-run =="
cargo bench --workspace --no-run

# Run-report gate: a small end-to-end training must emit a schema-valid
# machine-readable report (vf2boost-run-report/v1), and each party's
# per-phase durations must sum to its busy time and stay within the run's
# wall clock (generous slack: CI boxes stall).
echo "== run report schema gate (jq) =="
REPORT=$(mktemp /tmp/vf2_run_report.XXXXXX.json)
VF2_KEY_BITS=256 cargo run --release -q -p vf2-bench --bin perf_smoke -- --report "$REPORT"
jq -e '.schema == "vf2boost-run-report/v1"' "$REPORT" > /dev/null
jq -e '.wall_time_s > 0 and .total_bytes > 0' "$REPORT" > /dev/null
jq -e '.parties | length >= 2' "$REPORT" > /dev/null
jq -e 'all(.parties[]; .phases.busy_s >= 0 and .ops != null and .events != null and .trace.cap > 0)' "$REPORT" > /dev/null
# Backend telemetry: every party names its bignum backend, Montgomery op
# counts are present, and the default (fixed) backend actually did the
# guest's modpow work.
jq -e 'all(.parties[]; (.crypto_backend | length) > 0 and .ops.modmul != null and .ops.redc != null)' "$REPORT" > /dev/null
jq -e '.parties[0] | (.crypto_backend | startswith("fixed-")) and .ops.modmul > 0 and .ops.redc > .ops.modmul' "$REPORT" > /dev/null
# Robustness telemetry: every party carries the host-loss counters and a
# per-peer-link retransmission block, and every completed tree records
# the party set that trained it (party 0 = guest is always present).
jq -e 'all(.parties[]; .events.quarantines != null and .events.rejoins != null and .events.transfer_retries != null and (.links | type == "array"))' "$REPORT" > /dev/null
jq -e '(.trees | length) > 0 and all(.trees[]; (.party_set | length) >= 1 and .party_set[0] == 0)' "$REPORT" > /dev/null
# busy == sum(phases) per party, and busy <= wall + slack.
jq -e '
  .wall_time_s as $wall |
  all(.parties[]; .phases |
    (((.encrypt_s + .build_hist_enc_s + .build_hist_plain_s
       + .pack_s + .decrypt_find_s + .split_nodes_s) - .busy_s) | fabs) < 1e-5
    and .busy_s <= $wall + 1.0)' "$REPORT" > /dev/null
rm -f "$REPORT"

# Pipelined-scheduler overlap gate: an 8-host smoke run under the
# event-driven scheduler must show real phase overlap in its run report —
# every party's busy time exceeds its largest single phase (work in at
# least two phases interleaved instead of one phase serializing the
# party), and the guest actually drained multi-answer batches from the
# event queue (more answers than batches).
echo "== pipelined scheduler overlap gate (8 hosts, jq) =="
REPORT=$(mktemp /tmp/vf2_pipelined_report.XXXXXX.json)
VF2_KEY_BITS=256 cargo run --release -q -p vf2-bench --bin perf_smoke -- --report-pipelined "$REPORT"
jq -e '.schema == "vf2boost-run-report/v1" and (.parties | length) == 9' "$REPORT" > /dev/null
jq -e '
  all(.parties[]; .phases |
    ([.encrypt_s, .build_hist_enc_s, .build_hist_plain_s,
      .pack_s, .decrypt_find_s, .split_nodes_s] | max) < .busy_s)' "$REPORT" > /dev/null
jq -e '.parties[0].events |
  .sched_batches > 0 and .sched_batch_hists > .sched_batches' "$REPORT" > /dev/null
rm -f "$REPORT"

echo "CI OK"
