#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

# Kill-and-restart chaos gate: a party is crashed mid-run and the job is
# resumed from checkpoints; the model must come back bitwise identical
# across a deterministic 3-seed matrix (61/71/81) covering every
# sequential/optimistic x raw/reordered/packed mode. The outer timeout
# guarantees a liveness bug fails the gate instead of hanging it.
echo "== chaos resume gate (3-seed matrix, 15 min cap) =="
timeout 900 cargo test -q --test resume

echo "== cargo bench --no-run =="
cargo bench --workspace --no-run

echo "CI OK"
