#!/usr/bin/env bash
# Local CI gate: formatting, lints (warnings are errors), and the full
# test suite. Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (all targets, -D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo bench --no-run =="
cargo bench --workspace --no-run

echo "CI OK"
